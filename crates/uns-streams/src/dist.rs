//! Finite discrete distributions over identifier domains `{0, …, n−1}`,
//! sampled in O(1) with Walker–Vose alias tables.
//!
//! Every workload of the paper's evaluation is a fixed categorical
//! distribution over the population: Zipfian peak attacks (Fig. 7a, α = 4),
//! truncated-Poisson targeted+flooding attacks (Fig. 7b, λ = n/2), uniform
//! honest traffic, and mixtures thereof. This module precomputes the
//! probability vector once and samples identifiers with a single uniform
//! draw plus one comparison, so streams of millions of elements (the
//! paper's `m = 10⁶`) generate in milliseconds.

use crate::error::StreamError;
use rand::Rng;

/// A finite discrete distribution over identifiers `0..domain`, with O(1)
/// sampling.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use uns_streams::IdDistribution;
///
/// # fn main() -> Result<(), uns_streams::StreamError> {
/// let zipf = IdDistribution::zipf(100, 1.2)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let id = zipf.sample(&mut rng);
/// assert!(id < 100);
/// // The probability vector is exposed for analytic use (e.g. the
/// // omniscient sampler's oracle).
/// assert!((zipf.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct IdDistribution {
    probs: Vec<f64>,
    /// Alias-table acceptance thresholds, scaled to [0, 1].
    accept: Vec<f64>,
    /// Alias-table fallback identifiers.
    alias: Vec<u32>,
}

impl IdDistribution {
    /// The uniform distribution over `n` identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::EmptyDomain`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self, StreamError> {
        if n == 0 {
            return Err(StreamError::EmptyDomain);
        }
        Self::from_weights(&vec![1.0; n])
    }

    /// Zipf distribution with exponent `alpha`: `p_i ∝ (i + 1)^{−α}`.
    ///
    /// `alpha = 0` degenerates to uniform; the paper's peak attack uses
    /// `alpha = 4` (Fig. 7a).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::EmptyDomain`] if `n == 0` and
    /// [`StreamError::InvalidAlpha`] unless `alpha` is finite and
    /// non-negative.
    pub fn zipf(n: usize, alpha: f64) -> Result<Self, StreamError> {
        if n == 0 {
            return Err(StreamError::EmptyDomain);
        }
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(StreamError::InvalidAlpha(alpha));
        }
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
        Self::from_weights(&weights)
    }

    /// Poisson(λ) truncated to `{0, …, n−1}` and renormalized — the paper's
    /// targeted+flooding attack shape (Fig. 7b uses `λ = n/2`).
    ///
    /// Computed in log space so rates as large as `λ = 500` stay exact.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::EmptyDomain`] if `n == 0` and
    /// [`StreamError::InvalidLambda`] unless `lambda` is finite and
    /// positive.
    pub fn truncated_poisson(n: usize, lambda: f64) -> Result<Self, StreamError> {
        if n == 0 {
            return Err(StreamError::EmptyDomain);
        }
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(StreamError::InvalidLambda(lambda));
        }
        // ln pmf(i) = −λ + i·ln λ − ln i!, built incrementally.
        let mut log_pmf = Vec::with_capacity(n);
        let mut current = -lambda; // ln pmf(0)
        log_pmf.push(current);
        for i in 1..n {
            current += lambda.ln() - (i as f64).ln();
            log_pmf.push(current);
        }
        let max = log_pmf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = log_pmf.iter().map(|&lp| (lp - max).exp()).collect();
        Self::from_weights(&weights)
    }

    /// A distribution proportional to arbitrary non-negative `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::EmptyDomain`] for empty weights and
    /// [`StreamError::InvalidWeights`] if any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn from_weights(weights: &[f64]) -> Result<Self, StreamError> {
        if weights.is_empty() {
            return Err(StreamError::EmptyDomain);
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(StreamError::InvalidWeights);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(StreamError::InvalidWeights);
        }
        let probs: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        let (accept, alias) = build_alias_table(&probs);
        Ok(Self { probs, accept, alias })
    }

    /// A convex mixture of distributions over the same domain.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::EmptyDomain`] for an empty component list,
    /// [`StreamError::InvalidWeights`] for bad mixture weights, and
    /// [`StreamError::MixtureDomainMismatch`] when components disagree on
    /// the domain.
    pub fn mixture(components: &[(f64, &IdDistribution)]) -> Result<Self, StreamError> {
        if components.is_empty() {
            return Err(StreamError::EmptyDomain);
        }
        if components.iter().any(|(w, _)| !w.is_finite() || *w < 0.0) {
            return Err(StreamError::InvalidWeights);
        }
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        if total <= 0.0 {
            return Err(StreamError::InvalidWeights);
        }
        let domain = components[0].1.domain();
        let mut probs = vec![0.0f64; domain];
        for (weight, dist) in components {
            if dist.domain() != domain {
                return Err(StreamError::MixtureDomainMismatch {
                    expected: domain,
                    found: dist.domain(),
                });
            }
            for (p, &q) in probs.iter_mut().zip(dist.probabilities()) {
                *p += weight / total * q;
            }
        }
        Self::from_weights(&probs)
    }

    /// Number of identifiers in the domain.
    pub fn domain(&self) -> usize {
        self.probs.len()
    }

    /// The exact probability vector, indexed by identifier.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// The probability of identifier `id` (0 outside the domain).
    pub fn probability(&self, id: u64) -> f64 {
        usize::try_from(id).ok().and_then(|i| self.probs.get(i)).copied().unwrap_or(0.0)
    }

    /// Draws one identifier in O(1) (one bucket pick + one comparison).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let bucket = rng.gen_range(0..self.probs.len());
        if rng.gen::<f64>() < self.accept[bucket] {
            bucket as u64
        } else {
            self.alias[bucket] as u64
        }
    }
}

/// Builds a Walker–Vose alias table for the probability vector `probs`.
///
/// Returns per-bucket acceptance probabilities (already divided by `1/n`)
/// and alias targets.
fn build_alias_table(probs: &[f64]) -> (Vec<f64>, Vec<u32>) {
    let n = probs.len();
    let mut accept = vec![0.0f64; n];
    let mut alias = vec![0u32; n];
    // Scale so that the average bucket holds exactly 1.
    let mut scaled: Vec<f64> = probs.iter().map(|&p| p * n as f64).collect();
    let mut small: Vec<usize> = Vec::with_capacity(n);
    let mut large: Vec<usize> = Vec::with_capacity(n);
    for (i, &s) in scaled.iter().enumerate() {
        if s < 1.0 {
            small.push(i);
        } else {
            large.push(i);
        }
    }
    while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
        small.pop();
        large.pop();
        accept[s] = scaled[s];
        alias[s] = l as u32;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if scaled[l] < 1.0 {
            small.push(l);
        } else {
            large.push(l);
        }
    }
    // Leftovers are numerically 1.
    for &i in small.iter().chain(large.iter()) {
        accept[i] = 1.0;
        alias[i] = i as u32;
    }
    (accept, alias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(dist: &IdDistribution, samples: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; dist.domain()];
        for _ in 0..samples {
            counts[dist.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples as f64).collect()
    }

    #[test]
    fn constructors_validate_inputs() {
        assert_eq!(IdDistribution::uniform(0).unwrap_err(), StreamError::EmptyDomain);
        assert_eq!(IdDistribution::zipf(0, 1.0).unwrap_err(), StreamError::EmptyDomain);
        assert!(matches!(IdDistribution::zipf(5, -1.0), Err(StreamError::InvalidAlpha(_))));
        assert!(matches!(IdDistribution::zipf(5, f64::NAN), Err(StreamError::InvalidAlpha(_))));
        assert!(matches!(
            IdDistribution::truncated_poisson(5, 0.0),
            Err(StreamError::InvalidLambda(_))
        ));
        assert_eq!(IdDistribution::from_weights(&[]).unwrap_err(), StreamError::EmptyDomain);
        assert_eq!(
            IdDistribution::from_weights(&[0.0, 0.0]).unwrap_err(),
            StreamError::InvalidWeights
        );
        assert_eq!(
            IdDistribution::from_weights(&[1.0, -0.5]).unwrap_err(),
            StreamError::InvalidWeights
        );
    }

    #[test]
    fn probabilities_always_normalized() {
        for dist in [
            IdDistribution::uniform(17).unwrap(),
            IdDistribution::zipf(64, 4.0).unwrap(),
            IdDistribution::truncated_poisson(100, 50.0).unwrap(),
            IdDistribution::from_weights(&[3.0, 1.0, 0.0, 6.0]).unwrap(),
        ] {
            let sum: f64 = dist.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        }
    }

    #[test]
    fn zipf_head_dominates_with_large_alpha() {
        // α = 4 over 1000 ids: the top id holds ~1/ζ(4) ≈ 92.4% of the mass
        // — the paper's peak attack.
        let dist = IdDistribution::zipf(1000, 4.0).unwrap();
        assert!((dist.probability(0) - 0.924).abs() < 0.005);
        assert!(dist.probability(1) < 0.06);
        // Monotone decreasing.
        for i in 1..1000u64 {
            assert!(dist.probability(i) <= dist.probability(i - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let dist = IdDistribution::zipf(10, 0.0).unwrap();
        for i in 0..10u64 {
            assert!((dist.probability(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn truncated_poisson_peaks_at_lambda() {
        let n = 1000;
        let lambda = 500.0;
        let dist = IdDistribution::truncated_poisson(n, lambda).unwrap();
        let argmax = (0..n as u64)
            .max_by(|&a, &b| dist.probability(a).partial_cmp(&dist.probability(b)).unwrap())
            .unwrap();
        assert!((argmax as f64 - lambda).abs() <= 1.0, "poisson mode at {argmax}");
        // Mass far from the mode is negligible.
        assert!(dist.probability(0) < 1e-30);
        assert!(dist.probability(999) < 1e-30);
    }

    #[test]
    fn truncated_poisson_small_lambda_is_monotone_decreasing() {
        let dist = IdDistribution::truncated_poisson(50, 0.8).unwrap();
        for i in 1..50u64 {
            assert!(dist.probability(i) <= dist.probability(i - 1) + 1e-15);
        }
    }

    #[test]
    fn alias_sampling_matches_probabilities() {
        let dist = IdDistribution::from_weights(&[5.0, 1.0, 3.0, 1.0]).unwrap();
        let emp = empirical(&dist, 200_000, 9);
        for (i, (&e, &p)) in emp.iter().zip(dist.probabilities()).enumerate() {
            assert!((e - p).abs() < 0.01, "id {i}: empirical {e} vs {p}");
        }
    }

    #[test]
    fn alias_sampling_matches_skewed_zipf() {
        let dist = IdDistribution::zipf(50, 2.0).unwrap();
        let emp = empirical(&dist, 300_000, 10);
        for (i, (&e, &p)) in emp.iter().zip(dist.probabilities()).enumerate() {
            assert!((e - p).abs() < 0.01, "id {i}: empirical {e} vs {p}");
        }
    }

    #[test]
    fn mixture_combines_components() {
        let uniform = IdDistribution::uniform(4).unwrap();
        let point = IdDistribution::from_weights(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        let mix = IdDistribution::mixture(&[(0.5, &uniform), (0.5, &point)]).unwrap();
        assert!((mix.probability(0) - (0.5 * 0.25 + 0.5)).abs() < 1e-12);
        assert!((mix.probability(1) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn mixture_validates_components() {
        let a = IdDistribution::uniform(4).unwrap();
        let b = IdDistribution::uniform(5).unwrap();
        assert!(matches!(
            IdDistribution::mixture(&[(0.5, &a), (0.5, &b)]),
            Err(StreamError::MixtureDomainMismatch { .. })
        ));
        assert_eq!(IdDistribution::mixture(&[]).unwrap_err(), StreamError::EmptyDomain);
        assert_eq!(IdDistribution::mixture(&[(0.0, &a)]).unwrap_err(), StreamError::InvalidWeights);
        assert_eq!(
            IdDistribution::mixture(&[(-1.0, &a)]).unwrap_err(),
            StreamError::InvalidWeights
        );
    }

    #[test]
    fn probability_out_of_domain_is_zero() {
        let dist = IdDistribution::uniform(3).unwrap();
        assert_eq!(dist.probability(3), 0.0);
        assert_eq!(dist.probability(u64::MAX), 0.0);
    }

    #[test]
    fn single_id_domain_always_samples_zero() {
        let dist = IdDistribution::uniform(1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_handles_extreme_skew() {
        // One id with ~all the mass plus many near-zero ids.
        let mut weights = vec![1e-12; 100];
        weights[42] = 1.0;
        let dist = IdDistribution::from_weights(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| dist.sample(&mut rng) == 42).count();
        assert!(hits > 9_900, "extreme-skew sampling broke: {hits}/10000");
    }
}
