//! Error type for stream generation.

use std::error::Error;
use std::fmt;

/// Errors returned when building distributions or streams.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    /// Identifier domains must hold at least one identifier.
    EmptyDomain,
    /// The Zipf exponent must be finite and non-negative.
    InvalidAlpha(f64),
    /// The Poisson rate must be finite and positive.
    InvalidLambda(f64),
    /// Weights must be finite, non-negative, and not all zero.
    InvalidWeights,
    /// Mixture components must share one identifier domain.
    MixtureDomainMismatch {
        /// Domain of the first component.
        expected: usize,
        /// The mismatching domain encountered.
        found: usize,
    },
    /// A trace specification is internally inconsistent.
    InvalidTraceSpec {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::EmptyDomain => write!(f, "identifier domain must be non-empty"),
            StreamError::InvalidAlpha(a) => {
                write!(f, "zipf exponent must be finite and non-negative, got {a}")
            }
            StreamError::InvalidLambda(l) => {
                write!(f, "poisson rate must be finite and positive, got {l}")
            }
            StreamError::InvalidWeights => {
                write!(f, "weights must be finite, non-negative and not all zero")
            }
            StreamError::MixtureDomainMismatch { expected, found } => {
                write!(f, "mixture components must share a domain: {expected} vs {found}")
            }
            StreamError::InvalidTraceSpec { reason } => {
                write!(f, "invalid trace specification: {reason}")
            }
        }
    }
}

impl Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            StreamError::EmptyDomain,
            StreamError::InvalidAlpha(f64::NAN),
            StreamError::InvalidLambda(-1.0),
            StreamError::InvalidWeights,
            StreamError::MixtureDomainMismatch { expected: 10, found: 20 },
            StreamError::InvalidTraceSpec { reason: "m < n".into() },
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<StreamError>();
    }
}
