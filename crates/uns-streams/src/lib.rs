#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Adversarial identifier-stream generation for the uniform node sampling
//! service of Anceaume, Busnel and Sericola (DSN 2013).
//!
//! The paper's evaluation (§VI) feeds the sampling strategies with synthetic
//! streams (Zipfian peak attacks, truncated-Poisson targeted+flooding
//! attacks) and with real HTTP-trace workloads. This crate builds all of
//! them:
//!
//! * [`dist`] — finite discrete distributions over identifier domains
//!   (uniform, Zipf(α), truncated Poisson(λ), arbitrary weights, mixtures)
//!   sampled in O(1) via Walker–Vose alias tables;
//! * [`generator`] — seeded infinite identifier streams drawn from a
//!   distribution;
//! * [`adversary`] — the paper's attack models: the *peak attack*
//!   (Fig. 7a), the combined *targeted + flooding attack* (Fig. 7b), the
//!   malicious-overrepresentation sweep (Fig. 11), and an explicit sybil
//!   injector for validating the §V effort bounds;
//! * [`traces`] — loaders for real traces plus seeded surrogates calibrated
//!   to the published statistics of the NASA / ClarkNet / Saskatchewan
//!   traces (Table II).
//!
//! # Example
//!
//! ```
//! use uns_streams::adversary::peak_attack_distribution;
//! use uns_streams::generator::IdStream;
//!
//! # fn main() -> Result<(), uns_streams::StreamError> {
//! // The paper's Fig. 7a workload: Zipf α = 4 over 1000 ids.
//! let dist = peak_attack_distribution(1000)?;
//! let stream: Vec<_> = IdStream::new(dist, 42).take(100).collect();
//! assert_eq!(stream.len(), 100);
//! # Ok(())
//! # }
//! ```

pub mod adversary;
pub mod dist;
pub mod error;
pub mod generator;
pub mod traces;

pub use adversary::SybilInjector;
pub use dist::IdDistribution;
pub use error::StreamError;
pub use generator::IdStream;
pub use traces::TraceSpec;
