//! Seeded identifier streams.
//!
//! The paper's model (§III-A) is an unbounded stream of identifiers
//! arriving quickly and sequentially; [`IdStream`] is exactly that — an
//! infinite, deterministic iterator of [`NodeId`]s drawn from a fixed
//! [`IdDistribution`].

use crate::dist::IdDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uns_core::NodeId;

/// An infinite, seeded stream of identifiers drawn i.i.d. from a
/// distribution.
///
/// # Example
///
/// ```
/// use uns_streams::{IdDistribution, IdStream};
///
/// # fn main() -> Result<(), uns_streams::StreamError> {
/// let dist = IdDistribution::uniform(10)?;
/// let first: Vec<_> = IdStream::new(dist.clone(), 7).take(5).collect();
/// let again: Vec<_> = IdStream::new(dist, 7).take(5).collect();
/// assert_eq!(first, again); // same seed, same stream
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct IdStream {
    dist: IdDistribution,
    rng: StdRng,
}

impl IdStream {
    /// Creates the stream; identical `(distribution, seed)` pairs generate
    /// identical streams.
    pub fn new(dist: IdDistribution, seed: u64) -> Self {
        Self { dist, rng: StdRng::seed_from_u64(seed) }
    }

    /// The distribution this stream draws from.
    pub fn distribution(&self) -> &IdDistribution {
        &self.dist
    }

    /// Collects the next `m` identifiers into a vector (the finite prefix
    /// `σ[1..m]` used by experiments).
    pub fn take_vec(&mut self, m: usize) -> Vec<NodeId> {
        (0..m).map(|_| self.next().expect("stream is infinite")).collect()
    }
}

impl Iterator for IdStream {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        Some(NodeId::new(self.dist.sample(&mut self.rng)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::MAX, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_in_domain() {
        let dist = IdDistribution::zipf(32, 1.0).unwrap();
        let a: Vec<NodeId> = IdStream::new(dist.clone(), 11).take(200).collect();
        let b: Vec<NodeId> = IdStream::new(dist.clone(), 11).take(200).collect();
        let c: Vec<NodeId> = IdStream::new(dist, 12).take(200).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|id| id.as_u64() < 32));
    }

    #[test]
    fn take_vec_advances_the_stream() {
        let dist = IdDistribution::uniform(1000).unwrap();
        let mut stream = IdStream::new(dist, 3);
        let first = stream.take_vec(50);
        let second = stream.take_vec(50);
        assert_eq!(first.len(), 50);
        assert_ne!(first, second, "take_vec must not rewind");
    }

    #[test]
    fn stream_reports_unbounded_size() {
        let dist = IdDistribution::uniform(2).unwrap();
        let stream = IdStream::new(dist, 0);
        assert_eq!(stream.size_hint(), (usize::MAX, None));
        assert_eq!(stream.distribution().domain(), 2);
    }
}
