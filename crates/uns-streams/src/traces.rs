//! Real-world trace workloads (Table II) and their seeded surrogates.
//!
//! The paper's real-data experiments use three HTTP request logs from the
//! Internet Traffic Archive: one month of NASA Kennedy Space Center
//! requests, two weeks of ClarkNet requests and seven months of University
//! of Saskatchewan requests. The logs themselves are not redistributable
//! with this repository, so this module provides both:
//!
//! * [`load_trace`] — a loader for the real logs when present on disk (one
//!   token per line: numeric identifiers are used as-is, anything else is
//!   hashed into the identifier space); and
//! * [`TraceSpec::generate`] — seeded *surrogate* traces calibrated to the
//!   published statistics of Table II (stream length `m`, number of
//!   distinct identifiers `n`, maximum frequency) with the Zipfian shape
//!   shown in the paper's Fig. 5. The calibration fits the Zipf exponent
//!   `α` so the expected top-identifier count matches the published maximum
//!   frequency, then guarantees the support size exactly by seeding one
//!   occurrence of every identifier.
//!
//! The sampling service only observes the frequency skew of its input, so
//! surrogates matching (m, n, max-frequency, tail shape) preserve the
//! behaviour the paper measures (see DESIGN.md §5).

use crate::dist::IdDistribution;
use crate::error::StreamError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::Path;
use uns_core::NodeId;

/// Published statistics of a trace (the paper's Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Trace name as used in the paper.
    pub name: &'static str,
    /// Stream length `m` ("# ids").
    pub ids: usize,
    /// Number of distinct identifiers `n`.
    pub distinct: usize,
    /// Number of occurrences of the most frequent identifier.
    pub max_frequency: usize,
}

/// NASA Kennedy Space Center WWW server, one month of HTTP requests.
pub const NASA: TraceSpec =
    TraceSpec { name: "NASA", ids: 1_891_715, distinct: 81_983, max_frequency: 17_572 };

/// ClarkNet WWW server (Metro Baltimore–Washington DC ISP), two weeks.
pub const CLARKNET: TraceSpec =
    TraceSpec { name: "ClarkNet", ids: 1_673_794, distinct: 94_787, max_frequency: 7_239 };

/// University of Saskatchewan WWW server, seven months.
pub const SASKATCHEWAN: TraceSpec =
    TraceSpec { name: "Saskatchewan", ids: 2_408_625, distinct: 162_523, max_frequency: 52_695 };

/// The three traces of Table II in paper order.
pub const PAPER_TRACES: [TraceSpec; 3] = [NASA, CLARKNET, SASKATCHEWAN];

/// Measured statistics of a concrete identifier stream (for regenerating
/// Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Stream length.
    pub ids: usize,
    /// Number of distinct identifiers observed.
    pub distinct: usize,
    /// Count of the most frequent identifier.
    pub max_frequency: usize,
}

/// Computes [`TraceStats`] for a stream.
pub fn stats_of(stream: &[NodeId]) -> TraceStats {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for id in stream {
        *counts.entry(id.as_u64()).or_insert(0) += 1;
    }
    TraceStats {
        ids: stream.len(),
        distinct: counts.len(),
        max_frequency: counts.values().copied().max().unwrap_or(0),
    }
}

impl TraceSpec {
    /// Scales the trace down by `divisor` (for fast CI experiments),
    /// preserving the `m/n` and `max/m` ratios.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    #[must_use]
    pub fn scaled(&self, divisor: usize) -> TraceSpec {
        assert!(divisor > 0, "divisor must be positive");
        TraceSpec {
            name: self.name,
            ids: (self.ids / divisor).max(16),
            distinct: (self.distinct / divisor).max(8),
            max_frequency: (self.max_frequency / divisor).max(2),
        }
    }

    /// Fits the Zipf exponent `α` such that the expected count of the top
    /// identifier over `m − n` draws matches `max_frequency − 1`
    /// (one occurrence of every identifier is seeded separately to pin the
    /// support size).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidTraceSpec`] for inconsistent
    /// statistics.
    pub fn calibrate_alpha(&self) -> Result<f64, StreamError> {
        self.validate()?;
        let target = (self.max_frequency as f64 - 1.0) / (self.ids as f64 - self.distinct as f64);
        // p_top(α) = 1 / H(n, α) is strictly increasing in α.
        let p_top = |alpha: f64| {
            let h: f64 = (1..=self.distinct).map(|i| (i as f64).powf(-alpha)).sum();
            1.0 / h
        };
        let (mut lo, mut hi) = (0.0f64, 8.0f64);
        if p_top(hi) < target {
            return Ok(hi); // max frequency beyond what Zipf can express
        }
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if p_top(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok((lo + hi) / 2.0)
    }

    /// Generates a seeded surrogate trace matching this specification:
    /// exactly `ids` elements, exactly `distinct` distinct identifiers, and
    /// a maximum frequency near `max_frequency`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidTraceSpec`] for inconsistent
    /// statistics.
    pub fn generate(&self, seed: u64) -> Result<Vec<NodeId>, StreamError> {
        let alpha = self.calibrate_alpha()?;
        let dist = IdDistribution::zipf(self.distinct, alpha)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream: Vec<NodeId> = Vec::with_capacity(self.ids);
        // One occurrence of every identifier pins the support size at n.
        stream.extend((0..self.distinct as u64).map(NodeId::new));
        for _ in 0..self.ids - self.distinct {
            stream.push(NodeId::new(dist.sample(&mut rng)));
        }
        // Fisher–Yates so the seeded occurrences are not clustered.
        for i in (1..stream.len()).rev() {
            let j = rng.gen_range(0..=i);
            stream.swap(i, j);
        }
        Ok(stream)
    }

    fn validate(&self) -> Result<(), StreamError> {
        if self.distinct == 0 || self.ids == 0 {
            return Err(StreamError::InvalidTraceSpec {
                reason: format!("{}: empty trace", self.name),
            });
        }
        if self.ids <= self.distinct {
            return Err(StreamError::InvalidTraceSpec {
                reason: format!(
                    "{}: stream length {} must exceed distinct count {}",
                    self.name, self.ids, self.distinct
                ),
            });
        }
        if self.max_frequency < 1 || self.max_frequency > self.ids - self.distinct + 1 {
            return Err(StreamError::InvalidTraceSpec {
                reason: format!(
                    "{}: max frequency {} inconsistent with m = {}, n = {}",
                    self.name, self.max_frequency, self.ids, self.distinct
                ),
            });
        }
        Ok(())
    }
}

/// Loads a real trace: one token per line; numeric tokens become
/// identifiers directly, anything else (e.g. client host names from the
/// original HTTP logs) is hashed into the 64-bit identifier space with a
/// fixed (seedless) mixer so repeated loads agree.
///
/// Empty lines are skipped.
///
/// # Errors
///
/// Propagates I/O errors from opening or reading the file.
pub fn load_trace(path: &Path) -> std::io::Result<Vec<NodeId>> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut stream = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let token = line.trim();
        if token.is_empty() {
            continue;
        }
        let id = match token.parse::<u64>() {
            Ok(number) => number,
            Err(_) => hash_token(token),
        };
        stream.push(NodeId::new(id));
    }
    Ok(stream)
}

/// FNV-1a over the token bytes followed by a splitmix64 finalizer.
fn hash_token(token: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in token.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer for avalanche.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn paper_specs_are_the_published_table2() {
        assert_eq!(NASA.ids, 1_891_715);
        assert_eq!(NASA.distinct, 81_983);
        assert_eq!(NASA.max_frequency, 17_572);
        assert_eq!(CLARKNET.ids, 1_673_794);
        assert_eq!(CLARKNET.distinct, 94_787);
        assert_eq!(CLARKNET.max_frequency, 7_239);
        assert_eq!(SASKATCHEWAN.ids, 2_408_625);
        assert_eq!(SASKATCHEWAN.distinct, 162_523);
        assert_eq!(SASKATCHEWAN.max_frequency, 52_695);
        assert_eq!(PAPER_TRACES.len(), 3);
    }

    #[test]
    fn calibration_hits_the_target_top_probability() {
        for spec in [NASA.scaled(100), CLARKNET.scaled(100), SASKATCHEWAN.scaled(100)] {
            let alpha = spec.calibrate_alpha().unwrap();
            assert!(alpha > 0.0 && alpha < 8.0, "{}: alpha = {alpha}", spec.name);
            let h: f64 = (1..=spec.distinct).map(|i| (i as f64).powf(-alpha)).sum();
            let target =
                (spec.max_frequency as f64 - 1.0) / (spec.ids as f64 - spec.distinct as f64);
            assert!(
                (1.0 / h - target).abs() < target * 0.01,
                "{}: p_top {} vs target {target}",
                spec.name,
                1.0 / h
            );
        }
    }

    #[test]
    fn surrogate_matches_spec_statistics() {
        let spec = NASA.scaled(200); // m ≈ 9.4k, n ≈ 409, max ≈ 87
        let stream = spec.generate(11).unwrap();
        let stats = stats_of(&stream);
        assert_eq!(stats.ids, spec.ids);
        assert_eq!(stats.distinct, spec.distinct, "support size must be exact");
        // Max frequency within sampling noise of the target.
        let ratio = stats.max_frequency as f64 / spec.max_frequency as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "max frequency {} vs spec {}",
            stats.max_frequency,
            spec.max_frequency
        );
    }

    #[test]
    fn surrogate_is_deterministic_and_seed_sensitive() {
        let spec = CLARKNET.scaled(500);
        assert_eq!(spec.generate(3).unwrap(), spec.generate(3).unwrap());
        assert_ne!(spec.generate(3).unwrap(), spec.generate(4).unwrap());
    }

    #[test]
    fn surrogate_is_zipf_shaped() {
        // Fig. 5: log-log rank/frequency is near-linear. Check the heavy
        // head: the top 1% of ids should hold far more than 1% of mass.
        let spec = SASKATCHEWAN.scaled(200);
        let stream = spec.generate(7).unwrap();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for id in &stream {
            *counts.entry(id.as_u64()).or_insert(0) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Saskatchewan is the flattest of the three traces (lowest α per
        // Fig. 5), so its top-1% head holds a modest but still
        // disproportionate share: ≫ 1% of the mass.
        let head = freqs.len().div_ceil(100);
        let head_mass: usize = freqs[..head].iter().sum();
        assert!(
            head_mass as f64 > 0.05 * stream.len() as f64,
            "head mass {head_mass} of {} not heavy-tailed",
            stream.len()
        );
        // The single most frequent id lands near the spec's target.
        let ratio = freqs[0] as f64 / spec.max_frequency as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "top frequency {} vs spec {}",
            freqs[0],
            spec.max_frequency
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let bad = TraceSpec { name: "bad", ids: 10, distinct: 10, max_frequency: 1 };
        assert!(bad.generate(0).is_err());
        let bad = TraceSpec { name: "bad", ids: 0, distinct: 0, max_frequency: 0 };
        assert!(bad.calibrate_alpha().is_err());
        let bad = TraceSpec { name: "bad", ids: 100, distinct: 10, max_frequency: 95 };
        assert!(bad.generate(0).is_err(), "max frequency exceeds m - n + 1");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_zero_divisor_panics() {
        let _ = NASA.scaled(0);
    }

    #[test]
    fn stats_of_empty_stream() {
        let stats = stats_of(&[]);
        assert_eq!(stats, TraceStats { ids: 0, distinct: 0, max_frequency: 0 });
    }

    #[test]
    fn load_trace_parses_numbers_and_hashes_tokens() {
        let dir = std::env::temp_dir();
        let path = dir.join("uns_streams_trace_test.txt");
        {
            let mut file = std::fs::File::create(&path).unwrap();
            writeln!(file, "42").unwrap();
            writeln!(file).unwrap();
            writeln!(file, "host-a.example.org").unwrap();
            writeln!(file, "host-a.example.org").unwrap();
            writeln!(file, "  7  ").unwrap();
        }
        let stream = load_trace(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(stream.len(), 4);
        assert_eq!(stream[0], NodeId::new(42));
        assert_eq!(stream[1], stream[2], "same token must hash identically");
        assert_ne!(stream[1], NodeId::new(42));
        assert_eq!(stream[3], NodeId::new(7));
    }

    #[test]
    fn load_trace_missing_file_errors() {
        assert!(load_trace(Path::new("/definitely/not/here.txt")).is_err());
    }

    #[test]
    fn hash_token_spreads_values() {
        let a = hash_token("alpha");
        let b = hash_token("beta");
        let c = hash_token("alpha ");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, hash_token("alpha"));
    }
}
