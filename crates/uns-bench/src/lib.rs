#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Reproduction harness for the evaluation of Anceaume, Busnel and
//! Sericola (DSN 2013).
//!
//! Every table and figure of the paper's §V–§VI maps to one function in
//! [`figures`] and one subcommand of the `repro` binary:
//!
//! | Paper artifact | Function | `repro` subcommand |
//! |---|---|---|
//! | Fig. 3 (targeted effort `L_{k,s}`) | [`figures::fig3`] | `fig3` |
//! | Fig. 4 (flooding effort `E_k`) | [`figures::fig4`] | `fig4` |
//! | Table I (key effort values) | [`figures::table1`] | `table1` |
//! | Table II (trace statistics) | [`figures::table2`] | `table2` |
//! | Fig. 5 (trace distributions) | [`figures::fig5`] | `fig5` |
//! | Fig. 6 (frequency over time) | [`figures::fig6`] | `fig6` |
//! | Fig. 7a (peak attack) | [`figures::fig7a`] | `fig7a` |
//! | Fig. 7b (targeted + flooding) | [`figures::fig7b`] | `fig7b` |
//! | Fig. 8 (`G_KL` vs `n`) | [`figures::fig8`] | `fig8` |
//! | Fig. 9 (`G_KL` vs `m`) | [`figures::fig9`] | `fig9` |
//! | Fig. 10a/b (`G_KL` vs `c`) | [`figures::fig10`] | `fig10a` / `fig10b` |
//! | Fig. 11 (`G_KL` vs #malicious) | [`figures::fig11`] | `fig11` |
//! | Fig. 12 (real traces) | [`figures::fig12`] | `fig12` |
//! | Overlay simulation (beyond the paper) | [`figures::overlay`] | `overlay` |
//!
//! Results are printed as aligned tables and written as CSV for plotting.
//! Absolute numbers need not match the paper (different hardware, RNG and
//! trace surrogates); the *shapes* — who wins, by what factor, where the
//! crossovers sit — are asserted by the integration tests.

pub mod figures;
pub mod report;
pub mod runner;

pub use report::Table;
pub use runner::GainExperiment;
