//! One function per table/figure of the paper's evaluation.
//!
//! Each function regenerates the data series behind the corresponding
//! artifact with the paper's parameters (scaled-down trace sizes and trial
//! counts are configurable for CI budgets) and returns [`Table`]s ready for
//! console display and CSV emission.

use crate::report::{fmt_f64, fmt_gain, Table};
use crate::runner::GainExperiment;
use uns_analysis::urns::{
    figure3_series, figure4_series, flooding_attack_effort, targeted_attack_effort,
};
use uns_analysis::Frequencies;
use uns_core::{KnowledgeFreeSampler, NodeSampler, OmniscientSampler};
use uns_sim::{MaliciousStrategy, SamplerKind, SimConfig, Simulation};
use uns_streams::adversary::{peak_attack_distribution, targeted_flooding_distribution};
use uns_streams::generator::IdStream;
use uns_streams::traces::{stats_of, PAPER_TRACES};
use uns_streams::{IdDistribution, SybilInjector};

/// A seed-to-sampler factory, as used by the estimator/eviction ablations.
type SamplerFactory<'a> = Box<dyn Fn(u64) -> Box<dyn NodeSampler> + 'a>;

/// Harness-wide experiment parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Trials per parameter setting (paper: 100).
    pub trials: usize,
    /// Divisor applied to the real-trace sizes (1 = the paper's full
    /// traces; 50 keeps `repro all` under a minute).
    pub trace_scale: usize,
    /// Divisor applied to the synthetic stream lengths (1 = the paper's
    /// `m`; larger values trade statistical resolution for speed).
    pub stream_scale: usize,
    /// Base seed for all randomness.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self { trials: 5, trace_scale: 50, stream_scale: 1, seed: 42 }
    }
}

impl Params {
    /// Minimal parameters for unit tests.
    pub fn quick() -> Self {
        Self { trials: 1, trace_scale: 400, stream_scale: 5, seed: 7 }
    }

    /// A stream length divided by the configured scale (floor 1000).
    fn scaled_m(&self, base: usize) -> usize {
        (base / self.stream_scale.max(1)).max(1_000)
    }
}

fn kf_factory(c: usize, k: usize, s: usize) -> impl FnMut(u64) -> Box<dyn NodeSampler> {
    move |seed| {
        Box::new(KnowledgeFreeSampler::with_count_min(c, k, s, seed).expect("valid KF parameters"))
    }
}

fn omniscient_factory(c: usize, probs: Vec<f64>) -> impl FnMut(u64) -> Box<dyn NodeSampler> {
    move |seed| {
        Box::new(OmniscientSampler::new(c, &probs, seed).expect("valid omniscient parameters"))
    }
}

/// Figure 3: targeted-attack effort `L_{k,s}` as a function of `k`
/// (`s = 10`) for `η_T ∈ {0.5, 10⁻¹, …, 10⁻⁶}`.
pub fn fig3() -> Table {
    let ks: Vec<usize> = (1..=10).map(|i| i * 50).collect();
    let etas = [0.5, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];
    let mut table = Table::new("fig3", &["k", "eta_T", "L_k_s"]);
    for &eta in &etas {
        for (k, l) in figure3_series(&ks, 10, eta).expect("valid figure 3 parameters") {
            table.push_row(vec![k.to_string(), format!("{eta:e}"), l.to_string()]);
        }
    }
    table
}

/// Figure 4: flooding-attack effort `E_k` as a function of `k` for
/// `η_F ∈ {0.5, 10⁻¹, …, 10⁻⁶}`.
pub fn fig4() -> Table {
    let ks: Vec<usize> = std::iter::once(10).chain((1..=10).map(|i| i * 50)).collect();
    let etas = [0.5, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];
    let mut table = Table::new("fig4", &["k", "eta_F", "E_k"]);
    for &eta in &etas {
        for (k, e) in figure4_series(&ks, eta).expect("valid figure 4 parameters") {
            table.push_row(vec![k.to_string(), format!("{eta:e}"), e.to_string()]);
        }
    }
    table
}

/// Table I: key `L_{k,s}` and `E_k` values next to the paper's printed
/// numbers.
pub fn table1() -> Table {
    // (k, s, eta, paper L, paper E or None when the paper leaves it blank)
    let rows: &[(usize, usize, f64, u64, Option<u64>)] = &[
        (10, 5, 1e-1, 38, Some(44)),
        (10, 5, 1e-4, 104, Some(110)),
        (50, 5, 1e-1, 193, Some(306)),
        (50, 10, 1e-1, 227, None),
        (50, 40, 1e-1, 296, None),
        (50, 5, 1e-4, 537, Some(651)),
        (50, 10, 1e-4, 571, None),
        (50, 40, 1e-4, 640, None),
        (250, 10, 1e-1, 1_138, Some(1_617)),
        (250, 10, 1e-4, 2_871, Some(3_363)),
    ];
    let mut table =
        Table::new("table1", &["k", "s", "eta", "L_ours", "L_paper", "E_ours", "E_paper"]);
    for &(k, s, eta, paper_l, paper_e) in rows {
        let ours_l = targeted_attack_effort(k, s, eta).expect("valid table 1 parameters");
        let ours_e = flooding_attack_effort(k, eta).expect("valid table 1 parameters");
        table.push_row(vec![
            k.to_string(),
            s.to_string(),
            format!("{eta:e}"),
            ours_l.to_string(),
            paper_l.to_string(),
            ours_e.to_string(),
            paper_e.map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

/// Table II: statistics of the trace surrogates against the published
/// values (scaled by `params.trace_scale`).
pub fn table2(params: Params) -> Table {
    let mut table = Table::new(
        "table2",
        &["trace", "scale", "m_spec", "m", "n_spec", "n", "maxfreq_spec", "maxfreq"],
    );
    for spec in PAPER_TRACES {
        let scaled = spec.scaled(params.trace_scale);
        let stream = scaled.generate(params.seed).expect("paper trace specs are consistent");
        let stats = stats_of(&stream);
        table.push_row(vec![
            spec.name.to_string(),
            format!("1/{}", params.trace_scale),
            scaled.ids.to_string(),
            stats.ids.to_string(),
            scaled.distinct.to_string(),
            stats.distinct.to_string(),
            scaled.max_frequency.to_string(),
            stats.max_frequency.to_string(),
        ]);
    }
    table
}

/// Figure 5: log-log rank/frequency series of the three trace surrogates.
pub fn fig5(params: Params) -> Table {
    let mut table = Table::new("fig5", &["trace", "rank", "frequency"]);
    for spec in PAPER_TRACES {
        let scaled = spec.scaled(params.trace_scale);
        let stream = scaled.generate(params.seed).expect("paper trace specs are consistent");
        let mut hist = Frequencies::new(scaled.distinct);
        for id in &stream {
            hist.record(id.as_u64());
        }
        let mut freqs: Vec<u64> = hist.counts().to_vec();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Log-spaced ranks for a compact series.
        let mut rank = 1usize;
        while rank <= freqs.len() {
            table.push_row(vec![
                spec.name.to_string(),
                rank.to_string(),
                freqs[rank - 1].to_string(),
            ]);
            rank = (rank * 3 / 2).max(rank + 1);
        }
    }
    table
}

/// Figure 6: cumulative frequency behaviour over time under a
/// Poisson-biased stream (paper settings `m = 40 000`, `n = 1000`,
/// `c = 15`, `k = 15`, `s = 17`).
///
/// The paper's isopleth shows how each stream's per-identifier frequencies
/// evolve as elements arrive; this table reports, at each time checkpoint,
/// the *cumulative* maximum identifier frequency and KL-vs-uniform of the
/// input, the knowledge-free output and the omniscient output.
pub fn fig6(params: Params) -> Table {
    let (n, c, k, s) = (1_000usize, 15usize, 15usize, 17usize);
    let m = params.scaled_m(40_000);
    let uniform = IdDistribution::uniform(n).expect("n > 0");
    let poisson = IdDistribution::truncated_poisson(n, 50.0).expect("valid lambda");
    let dist = IdDistribution::mixture(&[(0.5, &uniform), (0.5, &poisson)]).expect("same domain");
    let stream: Vec<_> = IdStream::new(dist.clone(), params.seed).take(m).collect();

    let mut kf = KnowledgeFreeSampler::with_count_min(c, k, s, params.seed).expect("valid KF");
    let mut omni =
        OmniscientSampler::new(c, dist.probabilities(), params.seed + 1).expect("valid omniscient");

    let buckets = 10usize;
    let bucket_len = m / buckets;
    let mut input = Frequencies::new(n);
    let mut out_kf = Frequencies::new(n);
    let mut out_omni = Frequencies::new(n);
    let mut table = Table::new(
        "fig6",
        &[
            "elements",
            "input_maxfreq",
            "kf_maxfreq",
            "omni_maxfreq",
            "input_kl",
            "kf_kl",
            "omni_kl",
        ],
    );
    for b in 0..buckets {
        for &id in &stream[b * bucket_len..(b + 1) * bucket_len] {
            input.record(id.as_u64());
            out_kf.record(kf.feed(id).as_u64());
            out_omni.record(omni.feed(id).as_u64());
        }
        table.push_row(vec![
            ((b + 1) * bucket_len).to_string(),
            input.max_frequency().to_string(),
            out_kf.max_frequency().to_string(),
            out_omni.max_frequency().to_string(),
            fmt_f64(input.kl_vs_uniform().unwrap_or(f64::NAN)),
            fmt_f64(out_kf.kl_vs_uniform().unwrap_or(f64::NAN)),
            fmt_f64(out_omni.kl_vs_uniform().unwrap_or(f64::NAN)),
        ]);
    }
    table
}

/// Shared engine for Figures 7a and 7b: per-identifier frequency profiles
/// of input, knowledge-free output and omniscient output, plus a summary.
fn fig7(name: &str, dist: IdDistribution, params: Params) -> Vec<Table> {
    let (n, c, k, s) = (dist.domain(), 10usize, 10usize, 5usize);
    let m = params.scaled_m(100_000);
    let stream: Vec<_> = IdStream::new(dist.clone(), params.seed).take(m).collect();
    let mut input = Frequencies::new(n);
    let mut out_kf = Frequencies::new(n);
    let mut out_omni = Frequencies::new(n);
    let mut kf = KnowledgeFreeSampler::with_count_min(c, k, s, params.seed).expect("valid KF");
    let mut omni =
        OmniscientSampler::new(c, dist.probabilities(), params.seed + 1).expect("valid omniscient");
    for &id in &stream {
        input.record(id.as_u64());
        out_kf.record(kf.feed(id).as_u64());
        out_omni.record(omni.feed(id).as_u64());
    }

    let mut profile = Table::new(name, &["id", "input", "knowledge_free", "omniscient"]);
    for id in 0..n as u64 {
        profile.push_row(vec![
            id.to_string(),
            input.count(id).to_string(),
            out_kf.count(id).to_string(),
            out_omni.count(id).to_string(),
        ]);
    }

    let mut summary = Table::new(
        format!("{name}_summary"),
        &["stream", "max_frequency", "kl_vs_uniform", "gain"],
    );
    let input_kl = input.kl_vs_uniform().unwrap_or(f64::NAN);
    for (label, hist) in [("input", &input), ("knowledge-free", &out_kf), ("omniscient", &out_omni)]
    {
        let kl = hist.kl_vs_uniform().unwrap_or(f64::NAN);
        let gain = if label == "input" { None } else { Some(1.0 - kl / input_kl) };
        summary.push_row(vec![
            label.to_string(),
            hist.max_frequency().to_string(),
            fmt_f64(kl),
            fmt_gain(gain),
        ]);
    }
    vec![profile, summary]
}

/// Figure 7a: peak attack (Zipf α = 4 over `n = 1000`), paper settings
/// `m = 100 000`, `c = 10`, `k = 10`, `s = 5`.
pub fn fig7a(params: Params) -> Vec<Table> {
    fig7("fig7a", peak_attack_distribution(1_000).expect("n > 0"), params)
}

/// Figure 7b: combined targeted + flooding attack (truncated Poisson
/// `λ = n/2` over uniform traffic), same settings as 7a.
pub fn fig7b(params: Params) -> Vec<Table> {
    fig7("fig7b", targeted_flooding_distribution(1_000).expect("n > 0"), params)
}

/// Figure 8: gain `G_KL` as a function of the population size `n` under a
/// peak attack (paper settings `m = 100 000`, `k = 10`, `c = 10`,
/// `s = 17`), with the KL-divergence inset columns.
pub fn fig8(params: Params) -> Table {
    let (c, k, s) = (10usize, 10usize, 17usize);
    let m = params.scaled_m(100_000);
    let ns = [20usize, 50, 100, 200, 500, 1_000];
    let mut table =
        Table::new("fig8", &["n", "gain_kf", "gain_omni", "kl_input", "kl_kf", "kl_omni"]);
    for &n in &ns {
        let dist = peak_attack_distribution(n).expect("n > 0");
        let experiment = GainExperiment {
            dist: dist.clone(),
            stream_len: m,
            trials: params.trials,
            base_seed: params.seed,
        };
        let kf = experiment.run(kf_factory(c, k, s));
        let omni = experiment.run(omniscient_factory(c, dist.probabilities().to_vec()));
        table.push_row(vec![
            n.to_string(),
            fmt_gain(kf.gain.map(|g| g.mean)),
            fmt_gain(omni.gain.map(|g| g.mean)),
            fmt_f64(kf.input_kl.mean),
            fmt_f64(kf.output_kl.mean),
            fmt_f64(omni.output_kl.mean),
        ]);
    }
    table
}

/// Figure 9: gain `G_KL` as a function of the stream length `m` under a
/// peak attack (`n = 1000`, `k = 10`, `c = 10`, `s = 17`).
pub fn fig9(params: Params) -> Table {
    let (n, c, k, s) = (1_000usize, 10usize, 10usize, 17usize);
    let ms: Vec<usize> =
        [10_000usize, 30_000, 100_000, 300_000, 1_000_000].map(|m| params.scaled_m(m)).to_vec();
    let dist = peak_attack_distribution(n).expect("n > 0");
    let mut table = Table::new("fig9", &["m", "gain_kf", "gain_omni"]);
    for &m in ms.iter() {
        let experiment = GainExperiment {
            dist: dist.clone(),
            stream_len: m,
            trials: params.trials,
            base_seed: params.seed,
        };
        let kf = experiment.run(kf_factory(c, k, s));
        let omni = experiment.run(omniscient_factory(c, dist.probabilities().to_vec()));
        table.push_row(vec![
            m.to_string(),
            fmt_gain(kf.gain.map(|g| g.mean)),
            fmt_gain(omni.gain.map(|g| g.mean)),
        ]);
    }
    table
}

/// Which attack biases the input stream of Figure 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig10Attack {
    /// Peak attack (Fig. 10a).
    Peak,
    /// Targeted + flooding attack (Fig. 10b).
    TargetedFlooding,
}

/// Figure 10: gain `G_KL` as a function of the memory size `c`
/// (`m = 100 000`, `n = 1000`, `k = 10`, `s = 17`).
pub fn fig10(attack: Fig10Attack, params: Params) -> Table {
    let (n, k, s) = (1_000usize, 10usize, 17usize);
    let m = params.scaled_m(100_000);
    let dist = match attack {
        Fig10Attack::Peak => peak_attack_distribution(n).expect("n > 0"),
        Fig10Attack::TargetedFlooding => targeted_flooding_distribution(n).expect("n > 0"),
    };
    let name = match attack {
        Fig10Attack::Peak => "fig10a",
        Fig10Attack::TargetedFlooding => "fig10b",
    };
    let cs = [10usize, 50, 100, 200, 300, 500, 700, 900];
    let mut table = Table::new(name, &["c", "gain_kf", "gain_omni"]);
    for &c in &cs {
        let experiment = GainExperiment {
            dist: dist.clone(),
            stream_len: m,
            trials: params.trials,
            base_seed: params.seed,
        };
        let kf = experiment.run(kf_factory(c, k, s));
        let omni = experiment.run(omniscient_factory(c, dist.probabilities().to_vec()));
        table.push_row(vec![
            c.to_string(),
            fmt_gain(kf.gain.map(|g| g.mean)),
            fmt_gain(omni.gain.map(|g| g.mean)),
        ]);
    }
    table
}

/// Figure 11: gain `G_KL` as a function of the number of malicious
/// identifiers (`m = 100 000` honest elements, `n = 1000`, `c = 50`,
/// `k = 50`, `s = 10`).
///
/// The adversary pays for `ℓ` distinct sybil identifiers and injects each
/// of them 500 times into the uniform honest stream (so each sybil recurs
/// 5× more often than an honest identifier). The gain is measured over the
/// combined `n + ℓ` identifier domain.
pub fn fig11(params: Params) -> Table {
    let (n, c, k, s) = (1_000usize, 50usize, 50usize, 10usize);
    let m = params.scaled_m(100_000);
    // Each sybil recurs 50x more often than an honest identifier.
    let repetitions = 50 * (m / n).max(1);
    let ls = [10usize, 20, 50, 100, 200, 500, 1_000];
    let honest: Vec<_> =
        IdStream::new(IdDistribution::uniform(n).expect("n > 0"), params.seed).take(m).collect();
    let mut table = Table::new("fig11", &["malicious_ids", "gain_kf", "kl_input", "kl_kf"]);
    for &l in &ls {
        let injector = SybilInjector::new(n as u64, l, repetitions);
        let mut gains = Vec::with_capacity(params.trials);
        let mut kl_ins = Vec::with_capacity(params.trials);
        let mut kl_outs = Vec::with_capacity(params.trials);
        for trial in 0..params.trials {
            let seed = params.seed.wrapping_add(trial as u64);
            let stream = injector.inject(&honest, seed);
            let outcome =
                GainExperiment::run_on_stream(&stream, n + l, 1, seed, kf_factory(c, k, s));
            if let Some(g) = outcome.gain {
                gains.push(g.mean);
            }
            kl_ins.push(outcome.input_kl.mean);
            kl_outs.push(outcome.output_kl.mean);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        table.push_row(vec![
            l.to_string(),
            if gains.is_empty() { "n/a".into() } else { fmt_f64(mean(&gains)) },
            fmt_f64(mean(&kl_ins)),
            fmt_f64(mean(&kl_outs)),
        ]);
    }
    table
}

/// Figure 12: KL divergence on the trace workloads for the paper's two
/// sizing rules (`c = k = ⌈log₂ n⌉` and `c = k = ⌈0.01·n⌉`) plus the
/// omniscient reference (`s = 5`).
pub fn fig12(params: Params) -> Table {
    let s = 5usize;
    let mut table = Table::new("fig12", &["trace", "stream", "c", "k", "kl_vs_uniform"]);
    for spec in PAPER_TRACES {
        let scaled = spec.scaled(params.trace_scale);
        let stream = scaled.generate(params.seed).expect("paper trace specs are consistent");
        let n = scaled.distinct;
        let mut input = Frequencies::new(n);
        for id in &stream {
            input.record(id.as_u64());
        }
        table.push_row(vec![
            spec.name.into(),
            "input".into(),
            "-".into(),
            "-".into(),
            fmt_f64(input.kl_vs_uniform().unwrap_or(f64::NAN)),
        ]);

        let log_n = (n as f64).log2().ceil() as usize;
        let one_percent = ((n as f64) * 0.01).ceil().max(2.0) as usize;
        for (label, c, k) in
            [("kf (c=k=log n)", log_n, log_n), ("kf (c=k=0.01n)", one_percent, one_percent)]
        {
            let outcome = GainExperiment::run_on_stream(
                &stream,
                n,
                params.trials,
                params.seed,
                kf_factory(c, k, s),
            );
            table.push_row(vec![
                spec.name.into(),
                label.into(),
                c.to_string(),
                k.to_string(),
                fmt_f64(outcome.output_kl.mean),
            ]);
        }

        // Omniscient: exact empirical probabilities of the trace itself.
        let probs: Vec<f64> =
            input.counts().iter().map(|&f| f as f64 / input.total() as f64).collect();
        let outcome = GainExperiment::run_on_stream(
            &stream,
            n,
            params.trials,
            params.seed,
            omniscient_factory(log_n, probs),
        );
        table.push_row(vec![
            spec.name.into(),
            "omniscient".into(),
            log_n.to_string(),
            "-".into(),
            fmt_f64(outcome.output_kl.mean),
        ]);
    }
    table
}

/// Overlay experiment (beyond the paper's evaluation): the sampling service
/// embedded in a gossip overlay under a sybil flood, compared across
/// sampling strategies.
pub fn overlay(params: Params) -> Table {
    // Volume flood: 12 certified sybil identifiers pushed hard every round.
    let attack = MaliciousStrategy::Flood { distinct_sybils: 12, batch_per_round: 10 };
    let mut table = Table::new(
        "overlay",
        &["sampler", "sybil_input_share", "sybil_view_share", "connected", "mean_output_kl"],
    );
    for (label, kind) in [
        ("knowledge-free", SamplerKind::KnowledgeFree { width: 10, depth: 5 }),
        ("adaptive-omniscient", SamplerKind::AdaptiveOmniscient),
        ("reservoir", SamplerKind::Reservoir),
        ("min-wise (Brahms)", SamplerKind::MinWiseArray),
    ] {
        let config = SimConfig::builder()
            .correct_nodes(80)
            .malicious_nodes(8)
            .attack(attack)
            .view_size(10)
            .fanout(3)
            .rounds(40)
            .sampler(kind)
            .seed(params.seed)
            .build()
            .expect("valid overlay configuration");
        let metrics = Simulation::new(config).expect("simulation builds").run();
        table.push_row(vec![
            label.to_string(),
            fmt_f64(metrics.mean_sybil_input_share),
            fmt_f64(metrics.mean_sybil_view_share),
            metrics.correct_subgraph_connected.to_string(),
            fmt_f64(metrics.mean_output_kl),
        ]);
    }
    table
}

/// Estimator ablation (beyond the paper; DESIGN.md §8): the knowledge-free
/// strategy instantiated with different frequency estimators, on both
/// attack workloads of Fig. 7.
///
/// Compares the paper's Count-Min (standard update), Count-Min with
/// conservative update, the Count sketch (unbiased median estimator) and
/// the exact oracle (adaptive omniscient upper bound).
pub fn ablation(params: Params) -> Table {
    use uns_core::NodeId;
    use uns_sketch::{CountMinSketch, CountSketch, UpdatePolicy};

    let (n, c, k, s) = (1_000usize, 10usize, 10usize, 5usize);
    let m = params.scaled_m(100_000);
    let mut table = Table::new("ablation", &["attack", "estimator", "gain", "output_kl"]);
    let attacks: [(&str, IdDistribution); 2] = [
        ("peak", peak_attack_distribution(n).expect("n > 0")),
        ("targeted+flooding", targeted_flooding_distribution(n).expect("n > 0")),
    ];
    for (attack_name, dist) in attacks {
        let stream: Vec<NodeId> = IdStream::new(dist, params.seed).take(m).collect();
        let estimators: Vec<(&str, SamplerFactory)> = vec![
            (
                "count-min (paper)",
                Box::new(move |seed| {
                    Box::new(KnowledgeFreeSampler::with_count_min(c, k, s, seed).expect("valid"))
                }),
            ),
            (
                "count-min (conservative)",
                Box::new(move |seed| {
                    let sketch = CountMinSketch::with_dimensions(k, s, seed ^ 0xc0de)
                        .expect("valid")
                        .with_policy(UpdatePolicy::Conservative);
                    Box::new(KnowledgeFreeSampler::new(c, sketch, seed).expect("valid"))
                }),
            ),
            (
                "count-sketch",
                Box::new(move |seed| {
                    let sketch = CountSketch::with_dimensions(k, s, seed ^ 0xbeef).expect("valid");
                    Box::new(KnowledgeFreeSampler::new(c, sketch, seed).expect("valid"))
                }),
            ),
            (
                "exact oracle",
                Box::new(move |seed| {
                    Box::new(KnowledgeFreeSampler::adaptive_omniscient(c, seed).expect("valid"))
                }),
            ),
        ];
        for (label, factory) in estimators {
            let outcome =
                GainExperiment::run_on_stream(&stream, n, params.trials, params.seed, |seed| {
                    factory(seed)
                });
            table.push_row(vec![
                attack_name.to_string(),
                label.to_string(),
                fmt_gain(outcome.gain.map(|g| g.mean)),
                fmt_f64(outcome.output_kl.mean),
            ]);
        }
    }
    table
}

/// Eviction-rule ablation (beyond the paper; DESIGN.md §8): the paper's
/// uniform eviction (`r_k = 1/c`) against eviction proportional to the
/// resident's estimated frequency, under the peak attack.
///
/// Frequency-proportional eviction preferentially expels heavy hitters
/// that slipped in, trading a small uniformity cost for faster flood
/// expulsion; the paper's analysis requires the uniform rule for exact
/// stationarity, which this table quantifies.
pub fn eviction_ablation(params: Params) -> Table {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use uns_core::{NodeId, SamplingMemory};
    use uns_sketch::{CountMinSketch, FrequencyEstimator};

    let (n, c, k, s) = (1_000usize, 10usize, 10usize, 5usize);
    let m = params.scaled_m(100_000);
    let dist = peak_attack_distribution(n).expect("n > 0");
    let stream: Vec<NodeId> = IdStream::new(dist, params.seed).take(m).collect();
    let mut table = Table::new("eviction_ablation", &["rule", "gain", "output_kl"]);

    for rule in ["uniform (paper)", "frequency-proportional"] {
        let mut input = Frequencies::new(n);
        let mut output = Frequencies::new(n);
        let mut sketch =
            CountMinSketch::with_dimensions(k, s, params.seed ^ 0xfeed).expect("valid");
        let mut memory = SamplingMemory::new(c).expect("valid");
        let mut rng = StdRng::seed_from_u64(params.seed);
        for &id in &stream {
            input.record(id.as_u64());
            sketch.record(id.as_u64());
            if !memory.is_full() {
                memory.insert(id);
            } else if !memory.contains(id) {
                let f_hat = sketch.estimate(id.as_u64()).max(1);
                let a_j = (sketch.floor_estimate() as f64 / f_hat as f64).min(1.0);
                if rng.gen::<f64>() < a_j {
                    if rule == "uniform (paper)" {
                        memory.replace_uniform(&mut rng, id);
                    } else {
                        memory.replace_weighted(&mut rng, id, |resident| {
                            sketch.estimate(resident.as_u64()) as f64
                        });
                    }
                }
            }
            if let Some(out) = memory.sample_uniform(&mut rng) {
                output.record(out.as_u64());
            }
        }
        let gain =
            uns_analysis::kl_gain(input.counts(), output.counts()).expect("valid histograms");
        table.push_row(vec![
            rule.to_string(),
            fmt_gain(gain),
            fmt_f64(output.kl_vs_uniform().unwrap_or(f64::NAN)),
        ]);
    }
    table
}

/// Transient-regime measurement (the paper's §VII future work): cumulative
/// output KL of both strategies over time under the peak attack, showing
/// the time-to-uniformity of the output stream.
pub fn transient(params: Params) -> Table {
    use uns_core::NodeId;

    let (n, c, k, s) = (1_000usize, 10usize, 10usize, 5usize);
    let m = params.scaled_m(100_000);
    let dist = peak_attack_distribution(n).expect("n > 0");
    let stream: Vec<NodeId> = IdStream::new(dist.clone(), params.seed).take(m).collect();
    let mut kf = KnowledgeFreeSampler::with_count_min(c, k, s, params.seed).expect("valid");
    let mut omni = OmniscientSampler::new(c, dist.probabilities(), params.seed + 1).expect("valid");
    let mut out_kf = Frequencies::new(n);
    let mut out_omni = Frequencies::new(n);
    let mut table = Table::new("transient", &["elements", "kf_kl", "omni_kl"]);
    let checkpoints = 12usize;
    let step = (m / checkpoints).max(1);
    for (i, &id) in stream.iter().enumerate() {
        out_kf.record(kf.feed(id).as_u64());
        out_omni.record(omni.feed(id).as_u64());
        if (i + 1) % step == 0 {
            table.push_row(vec![
                (i + 1).to_string(),
                fmt_f64(out_kf.kl_vs_uniform().unwrap_or(f64::NAN)),
                fmt_f64(out_omni.kl_vs_uniform().unwrap_or(f64::NAN)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_analysis() {
        let table = table1();
        assert_eq!(table.len(), 10);
        // First row: k=10, s=5, η=0.1 → ours must equal the paper exactly.
        assert_eq!(table.rows[0][3], "38");
        assert_eq!(table.rows[0][4], "38");
        assert_eq!(table.rows[0][5], "44");
    }

    #[test]
    fn fig3_and_fig4_series_are_monotone_in_k() {
        let t3 = fig3();
        assert_eq!(t3.len(), 10 * 7);
        let t4 = fig4();
        assert_eq!(t4.len(), 11 * 7);
        // Within one η block of fig3, L grows with k.
        let first_block: Vec<u64> = t3.rows[..10].iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(first_block.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn table2_and_fig5_scale_down() {
        let params = Params::quick();
        let t2 = table2(params);
        assert_eq!(t2.len(), 3);
        let t5 = fig5(params);
        assert!(t5.len() > 10);
    }

    #[test]
    fn fig6_shows_the_expected_ordering() {
        let table = fig6(Params::quick());
        assert_eq!(table.len(), 10);
        // At the end of the stream (cumulative, stationary regime) the
        // divergences must order input > knowledge-free > omniscient, and
        // the peak must shrink in the same order.
        let last = table.rows.last().unwrap();
        let input_max: u64 = last[1].parse().unwrap();
        let kf_max: u64 = last[2].parse().unwrap();
        let omni_max: u64 = last[3].parse().unwrap();
        let input_kl: f64 = last[4].parse().unwrap();
        let kf_kl: f64 = last[5].parse().unwrap();
        let omni_kl: f64 = last[6].parse().unwrap();
        assert!(input_kl > kf_kl, "input {input_kl} vs kf {kf_kl}");
        assert!(kf_kl > omni_kl, "kf {kf_kl} vs omni {omni_kl}");
        assert!(input_max > kf_max, "peak: input {input_max} vs kf {kf_max}");
        assert!(kf_max > omni_max, "peak: kf {kf_max} vs omni {omni_max}");
    }

    #[test]
    fn fig11_gain_degrades_with_malicious_count() {
        let table = fig11(Params::quick());
        let first: f64 = table.rows[0][1].parse().unwrap();
        let mid: f64 = table.rows[3][1].parse().unwrap(); // 100 malicious
        assert!(
            first > mid + 0.1,
            "gain should degrade: {} ids -> {first}, 100 ids -> {mid}",
            table.rows[0][0]
        );
    }

    #[test]
    fn ablation_exact_oracle_survives_the_flooding_attack() {
        let table = ablation(Params::quick());
        assert_eq!(table.len(), 8);
        // Peak attack: every estimator achieves a solid gain.
        for offset in 0..4 {
            let gain: f64 = table.rows[offset][2].parse().unwrap();
            assert!(gain > 0.5, "{}: peak gain {gain}", table.rows[offset][1]);
        }
        // Targeted+flooding: the sketches are subverted (the attack exceeds
        // E_k) but the exact oracle — immune to sketch collisions — is not.
        let exact_gain: f64 = table.rows[7][2].parse().unwrap();
        let cm_gain: f64 = table.rows[4][2].parse().unwrap();
        assert!(
            exact_gain > cm_gain + 0.3,
            "exact oracle ({exact_gain}) should beat the flooded sketch ({cm_gain})"
        );
        // (At small m the exact oracle's singleton floor slows Γ turnover,
        // so it need not dominate on the peak attack — a genuine finite-m
        // effect documented in EXPERIMENTS.md.)
    }

    #[test]
    fn eviction_ablation_runs_and_both_rules_unbias() {
        let table = eviction_ablation(Params::quick());
        assert_eq!(table.len(), 2);
        for row in &table.rows {
            let gain: f64 = row[1].parse().unwrap();
            assert!(gain > 0.5, "{}: gain {gain}", row[0]);
        }
    }

    #[test]
    fn transient_kl_decreases_over_time() {
        let table = transient(Params::quick());
        let first: f64 = table.rows[0][2].parse().unwrap();
        let last: f64 = table.rows.last().unwrap()[2].parse().unwrap();
        assert!(last < first, "omniscient transient should shrink: {first} -> {last}");
    }

    #[test]
    fn overlay_ranks_knowledge_free_above_reservoir() {
        let table = overlay(Params::quick());
        assert_eq!(table.len(), 4);
        let kf_view: f64 = table.rows[0][2].parse().unwrap();
        let res_view: f64 = table.rows[2][2].parse().unwrap();
        assert!(kf_view < res_view, "kf {kf_view} vs reservoir {res_view}");
    }
}
