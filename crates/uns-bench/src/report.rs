//! Result tables: aligned console rendering and CSV emission.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A named result table (one per figure/table of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Artifact name, e.g. `"fig8"`; used as the CSV file stem.
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Self {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells that contain
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<name>.csv` (creating `dir` if needed) and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.name)?;
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in &self.rows {
            let cells: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// Formats an `f64` with 4 decimal places (the harness's standard cell
/// format).
pub fn fmt_f64(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats an optional gain, rendering `None` (undefined gain on uniform
/// input) as `"n/a"`.
pub fn fmt_gain(gain: Option<f64>) -> String {
    gain.map(fmt_f64).unwrap_or_else(|| "n/a".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut table = Table::new("demo", &["k", "value"]);
        table.push_row(vec!["10".into(), "38".into()]);
        table.push_row(vec!["50".into(), "227".into()]);
        table
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_columns_panic() {
        let _ = Table::new("x", &[]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut table = Table::new("x", &["a", "b"]);
        table.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_round_trip_shape() {
        let table = sample_table();
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["k,value", "10,38", "50,227"]);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut table = Table::new("x", &["a"]);
        table.push_row(vec!["hello, world".into()]);
        table.push_row(vec!["say \"hi\"".into()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn display_is_aligned() {
        let text = sample_table().to_string();
        assert!(text.contains("== demo =="));
        assert!(text.contains("k"));
        assert!(text.contains("227"));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("uns_bench_report_test");
        let path = sample_table().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("k,value"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(0.123456), "0.1235");
        assert_eq!(fmt_gain(Some(1.0)), "1.0000");
        assert_eq!(fmt_gain(None), "n/a");
    }
}
