//! Generic experiment runner: stream → sampler → gain, averaged over
//! trials.
//!
//! The paper averages 100 trials per parameter setting (§VI-A). The runner
//! reproduces that protocol with a configurable trial count: each trial
//! draws a fresh stream (and fresh sampler coins) from a trial-specific
//! seed, runs the one-pass strategy, and measures the KL gain `G_KL`
//! (Equation 6) of the output stream over the input stream.

use uns_analysis::{kl_gain, kl_vs_uniform, Frequencies, Summary};
use uns_core::{NodeId, NodeSampler};
use uns_streams::{IdDistribution, IdStream};

/// Per-trial measurements of one sampler on one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialOutcome {
    /// KL divergence of the input stream from uniform (nats).
    pub input_kl: f64,
    /// KL divergence of the output stream from uniform (nats).
    pub output_kl: f64,
    /// The paper's gain `G_KL`, `None` when the input was uniform.
    pub gain: Option<f64>,
    /// Largest per-identifier frequency in the output stream.
    pub output_max_frequency: u64,
}

/// Aggregated outcome over all trials.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Summary of per-trial gains (trials with undefined gain skipped).
    pub gain: Option<Summary>,
    /// Summary of per-trial output KL divergences.
    pub output_kl: Summary,
    /// Summary of per-trial input KL divergences.
    pub input_kl: Summary,
}

/// A gain experiment: a workload distribution, a stream length and a trial
/// count.
///
/// # Example
///
/// ```
/// use uns_bench::GainExperiment;
/// use uns_core::KnowledgeFreeSampler;
/// use uns_streams::adversary::peak_attack_distribution;
///
/// let experiment = GainExperiment {
///     dist: peak_attack_distribution(100).unwrap(),
///     stream_len: 20_000,
///     trials: 3,
///     base_seed: 1,
/// };
/// let outcome = experiment
///     .run(|seed| Box::new(KnowledgeFreeSampler::with_count_min(10, 10, 5, seed).unwrap()));
/// assert!(outcome.gain.unwrap().mean > 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct GainExperiment {
    /// Workload distribution (the adversarially biased input law).
    pub dist: IdDistribution,
    /// Stream length `m` per trial.
    pub stream_len: usize,
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `t` uses `base_seed + t` for both stream and
    /// sampler.
    pub base_seed: u64,
}

impl GainExperiment {
    /// Runs a single trial with the given sampler.
    pub fn run_trial(&self, sampler: &mut dyn NodeSampler, seed: u64) -> TrialOutcome {
        let n = self.dist.domain();
        let mut input = Frequencies::new(n);
        let mut output = Frequencies::new(n);
        for id in IdStream::new(self.dist.clone(), seed).take(self.stream_len) {
            input.record(id.as_u64());
            let out = sampler.feed(id);
            // Outputs outside the domain cannot occur here (streams are
            // domain-restricted), but guard for custom samplers.
            output.try_record(out.as_u64());
        }
        let input_kl = kl_vs_uniform(input.counts()).unwrap_or(f64::INFINITY);
        let output_kl = kl_vs_uniform(output.counts()).unwrap_or(f64::INFINITY);
        let gain = kl_gain(input.counts(), output.counts()).ok().flatten();
        TrialOutcome { input_kl, output_kl, gain, output_max_frequency: output.max_frequency() }
    }

    /// Runs all trials, building a fresh sampler per trial from `factory`
    /// (which receives the trial seed).
    pub fn run<F>(&self, mut factory: F) -> ExperimentOutcome
    where
        F: FnMut(u64) -> Box<dyn NodeSampler>,
    {
        let mut gains = Vec::with_capacity(self.trials);
        let mut output_kls = Vec::with_capacity(self.trials);
        let mut input_kls = Vec::with_capacity(self.trials);
        for trial in 0..self.trials {
            let seed = self.base_seed.wrapping_add(trial as u64);
            let mut sampler = factory(seed);
            let outcome = self.run_trial(sampler.as_mut(), seed);
            if let Some(g) = outcome.gain {
                gains.push(g);
            }
            output_kls.push(outcome.output_kl);
            input_kls.push(outcome.input_kl);
        }
        ExperimentOutcome {
            gain: Summary::from_slice(&gains),
            output_kl: Summary::from_slice(&output_kls).unwrap_or(Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            }),
            input_kl: Summary::from_slice(&input_kls).unwrap_or(Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            }),
        }
    }

    /// Runs all trials on a *fixed stream* (e.g. a trace) instead of a
    /// distribution-generated one; only the sampler coins vary per trial.
    pub fn run_on_stream<F>(
        stream: &[NodeId],
        domain: usize,
        trials: usize,
        base_seed: u64,
        mut factory: F,
    ) -> ExperimentOutcome
    where
        F: FnMut(u64) -> Box<dyn NodeSampler>,
    {
        let mut input = Frequencies::new(domain);
        for id in stream {
            input.record(id.as_u64());
        }
        let input_kl = kl_vs_uniform(input.counts()).unwrap_or(f64::INFINITY);
        let mut gains = Vec::with_capacity(trials);
        let mut output_kls = Vec::with_capacity(trials);
        for trial in 0..trials {
            let seed = base_seed.wrapping_add(trial as u64);
            let mut sampler = factory(seed);
            let mut output = Frequencies::new(domain);
            for &id in stream {
                output.try_record(sampler.feed(id).as_u64());
            }
            output_kls.push(kl_vs_uniform(output.counts()).unwrap_or(f64::INFINITY));
            if let Some(g) = kl_gain(input.counts(), output.counts()).ok().flatten() {
                gains.push(g);
            }
        }
        ExperimentOutcome {
            gain: Summary::from_slice(&gains),
            output_kl: Summary::from_slice(&output_kls).unwrap_or(Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            }),
            input_kl: Summary::from_slice(&[input_kl]).unwrap_or(Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uns_core::{KnowledgeFreeSampler, PassthroughSampler};
    use uns_streams::adversary::peak_attack_distribution;

    fn experiment(trials: usize) -> GainExperiment {
        GainExperiment {
            dist: peak_attack_distribution(50).unwrap(),
            stream_len: 10_000,
            trials,
            base_seed: 3,
        }
    }

    #[test]
    fn passthrough_has_zero_gain() {
        let outcome = experiment(3).run(|_| Box::new(PassthroughSampler::new()));
        let gain = outcome.gain.unwrap();
        assert!(gain.mean.abs() < 1e-9, "passthrough gain {}", gain.mean);
        assert_eq!(gain.count, 3);
        // Output divergence equals input divergence.
        assert!((outcome.output_kl.mean - outcome.input_kl.mean).abs() < 1e-9);
    }

    #[test]
    fn knowledge_free_gain_is_positive_and_reduces_kl() {
        let outcome = experiment(3)
            .run(|seed| Box::new(KnowledgeFreeSampler::with_count_min(10, 10, 5, seed).unwrap()));
        let gain = outcome.gain.unwrap();
        assert!(gain.mean > 0.5, "gain {}", gain.mean);
        assert!(outcome.output_kl.mean < outcome.input_kl.mean);
    }

    #[test]
    fn trials_are_independent_but_deterministic() {
        let a = experiment(2)
            .run(|seed| Box::new(KnowledgeFreeSampler::with_count_min(5, 10, 5, seed).unwrap()));
        let b = experiment(2)
            .run(|seed| Box::new(KnowledgeFreeSampler::with_count_min(5, 10, 5, seed).unwrap()));
        assert_eq!(a.gain.unwrap(), b.gain.unwrap());
    }

    #[test]
    fn fixed_stream_runner_matches_domain() {
        let stream: Vec<NodeId> = (0..5_000u64).map(|i| NodeId::new(i % 20)).collect();
        let outcome = GainExperiment::run_on_stream(&stream, 20, 2, 1, |seed| {
            Box::new(KnowledgeFreeSampler::with_count_min(5, 8, 3, seed).unwrap())
        });
        // The input is already uniform (round-robin), so gain is undefined.
        assert!(outcome.gain.is_none());
        assert!(outcome.input_kl.mean < 1e-9);
    }
}
