//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [TARGET] [--trials N] [--scale D] [--seed S] [--out DIR]
//!
//! TARGET: fig3 fig4 fig5 fig6 fig7a fig7b fig8 fig9 fig10a fig10b fig11
//!         fig12 table1 table2 overlay ablation eviction transient all
//!         (default: all)
//! --trials N   trials per parameter setting     (default: 5; paper: 100)
//! --scale D    trace size divisor               (default: 50; paper: 1)
//! --seed S     base seed                        (default: 42)
//! --out DIR    CSV output directory             (default: results)
//! ```
//!
//! Each target prints an aligned table and writes `DIR/<name>.csv`.

use std::path::PathBuf;
use std::process::ExitCode;
use uns_bench::figures::{self, Fig10Attack, Params};
use uns_bench::Table;

struct Cli {
    target: String,
    params: Params,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Cli, String> {
    let mut target = "all".to_string();
    let mut params = Params::default();
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                let value = args.next().ok_or("--trials needs a value")?;
                params.trials = value.parse().map_err(|_| format!("bad trial count: {value}"))?;
                if params.trials == 0 {
                    return Err("--trials must be at least 1".into());
                }
            }
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                params.trace_scale =
                    value.parse().map_err(|_| format!("bad scale divisor: {value}"))?;
                if params.trace_scale == 0 {
                    return Err("--scale must be at least 1".into());
                }
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                params.seed = value.parse().map_err(|_| format!("bad seed: {value}"))?;
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            other if !other.starts_with('-') => target = other.to_string(),
            other => return Err(format!("unknown flag: {other}\n{USAGE}")),
        }
    }
    Ok(Cli { target, params, out_dir })
}

const USAGE: &str = "usage: repro [TARGET] [--trials N] [--scale D] [--seed S] [--out DIR]\n\
TARGETS: table1 table2 fig3 fig4 fig5 fig6 fig7a fig7b fig8 fig9 fig10a fig10b fig11 fig12\n         overlay ablation eviction transient all";

fn tables_for(target: &str, params: Params) -> Result<Vec<Table>, String> {
    Ok(match target {
        "table1" => vec![figures::table1()],
        "table2" => vec![figures::table2(params)],
        "fig3" => vec![figures::fig3()],
        "fig4" => vec![figures::fig4()],
        "fig5" => vec![figures::fig5(params)],
        "fig6" => vec![figures::fig6(params)],
        "fig7a" => figures::fig7a(params),
        "fig7b" => figures::fig7b(params),
        "fig8" => vec![figures::fig8(params)],
        "fig9" => vec![figures::fig9(params)],
        "fig10a" => vec![figures::fig10(Fig10Attack::Peak, params)],
        "fig10b" => vec![figures::fig10(Fig10Attack::TargetedFlooding, params)],
        "fig11" => vec![figures::fig11(params)],
        "fig12" => vec![figures::fig12(params)],
        "overlay" => vec![figures::overlay(params)],
        "ablation" => vec![figures::ablation(params)],
        "eviction" => vec![figures::eviction_ablation(params)],
        "transient" => vec![figures::transient(params)],
        "all" => {
            let mut all = Vec::new();
            for t in [
                "table1",
                "table2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7a",
                "fig7b",
                "fig8",
                "fig9",
                "fig10a",
                "fig10b",
                "fig11",
                "fig12",
                "overlay",
                "ablation",
                "eviction",
                "transient",
            ] {
                eprintln!("[repro] running {t}…");
                all.extend(tables_for(t, params)?);
            }
            all
        }
        other => return Err(format!("unknown target: {other}\n{USAGE}")),
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let tables = match tables_for(&cli.target, cli.params) {
        Ok(tables) => tables,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    for table in &tables {
        // Frequency profiles are thousands of rows; print only a summary
        // line for those and the full table otherwise.
        if table.len() > 64 {
            println!("== {} == ({} rows, see CSV)", table.name, table.len());
        } else {
            println!("{table}");
        }
        match table.write_csv(&cli.out_dir) {
            Ok(path) => eprintln!("[repro] wrote {}", path.display()),
            Err(err) => {
                eprintln!("[repro] failed to write {}: {err}", table.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
