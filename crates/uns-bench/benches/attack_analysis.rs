//! Benchmarks of the §V analytic routines (the code behind Figures 3–4 and
//! Table I) and of the full figure-regeneration path for the cheapest
//! figure, as a regression guard on `repro` wall-clock time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uns_analysis::urns::{flooding_attack_effort, targeted_attack_effort, OccupancyProcess};

fn bench_efforts(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_effort");
    for k in [10usize, 50, 250] {
        group.bench_with_input(BenchmarkId::new("targeted", k), &k, |b, &k| {
            b.iter(|| black_box(targeted_attack_effort(k, 10, 1e-4).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("flooding", k), &k, |b, &k| {
            b.iter(|| black_box(flooding_attack_effort(k, 1e-4).unwrap()))
        });
    }
    group.finish();
}

fn bench_occupancy_process(c: &mut Criterion) {
    let mut group = c.benchmark_group("occupancy_process");
    for k in [50usize, 250, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut process = OccupancyProcess::new(k).unwrap();
                for _ in 0..1_000 {
                    process.step();
                }
                black_box(process.expected())
            })
        });
    }
    group.finish();
}

fn bench_table1_regeneration(c: &mut Criterion) {
    c.bench_function("repro_table1", |b| b.iter(|| black_box(uns_bench::figures::table1())));
}

criterion_group!(benches, bench_efforts, bench_occupancy_process, bench_table1_regeneration);
criterion_main!(benches);
