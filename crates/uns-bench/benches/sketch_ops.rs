//! Micro-benchmarks of the frequency-estimation substrates (the paper's
//! Algorithm 2 and its alternatives), plus the two primitives underneath
//! every per-element step: the 2-universal hash and the sampling memory's
//! uniform replacement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use uns_core::{NodeId, SamplingMemory};
use uns_sketch::{
    CountMinSketch, CountSketch, ExactFrequencyOracle, FrequencyEstimator, HashFamily,
    HashFamilyKind, UniversalHash,
};
use uns_streams::adversary::peak_attack_distribution;
use uns_streams::IdStream;

const STREAM_LEN: usize = 10_000;

fn ids() -> Vec<u64> {
    IdStream::new(peak_attack_distribution(10_000).unwrap(), 3)
        .take(STREAM_LEN)
        .map(NodeId::as_u64)
        .collect()
}

fn bench_record(c: &mut Criterion) {
    let ids = ids();
    let mut group = c.benchmark_group("estimator_record");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for (k, s) in [(10usize, 5usize), (50, 10), (250, 10)] {
        group.bench_with_input(
            BenchmarkId::new("count_min", format!("k{k}_s{s}")),
            &(k, s),
            |b, &(k, s)| {
                b.iter(|| {
                    let mut sketch = CountMinSketch::with_dimensions(k, s, 1).unwrap();
                    for &id in &ids {
                        sketch.record(id);
                    }
                    black_box(sketch.total())
                })
            },
        );
    }
    group.bench_function("count_sketch_k50_s10", |b| {
        b.iter(|| {
            let mut sketch = CountSketch::with_dimensions(50, 10, 1).unwrap();
            for &id in &ids {
                sketch.record(id);
            }
            black_box(sketch.total())
        })
    });
    group.bench_function("exact_oracle", |b| {
        b.iter(|| {
            let mut oracle = ExactFrequencyOracle::new();
            for &id in &ids {
                oracle.record(id);
            }
            black_box(oracle.total())
        })
    });
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    // The innermost primitive: one Carter–Wegman evaluation. The fast-range
    // rewrite targets exactly this number.
    let functions = HashFamily::new(3).functions(5, 10).unwrap();
    let ids = ids();
    let mut group = c.benchmark_group("universal_hash");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.bench_function("hash", |b| {
        let h = functions[0];
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids {
                acc = acc.wrapping_add(h.hash(id));
            }
            black_box(acc)
        })
    });
    group.bench_function("hash_rows_s5", |b| {
        let mut out = Vec::with_capacity(functions.len());
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids {
                out.clear();
                UniversalHash::hash_rows(&functions, id, &mut out);
                acc = acc.wrapping_add(out.iter().sum::<u64>());
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_hash_family(c: &mut Criterion) {
    // Mersenne Carter-Wegman vs multiply-shift, head to head, at the two
    // granularities the sketches use: one row evaluation over a prepared
    // input ("folded" - Mersenne pays fold61 once per element, multiply-
    // shift's preparation is the identity) and the full s=10 row sweep a
    // k=250,s=10 sketch runs per record.
    let ids = ids();
    let mut group = c.benchmark_group("hash_family");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for family in [HashFamilyKind::Mersenne, HashFamilyKind::MultiplyShift] {
        let name = match family {
            HashFamilyKind::Mersenne => "mersenne",
            HashFamilyKind::MultiplyShift => "multiply_shift",
        };
        let rows = HashFamily::with_kind(3, family).row_hashes(10, 500).unwrap();
        group.bench_with_input(BenchmarkId::new("folded", name), &rows, |b, rows| {
            let row = rows[0];
            b.iter(|| {
                let mut acc = 0u64;
                for &id in &ids {
                    acc = acc.wrapping_add(row.eval_prepared(family.prepare(id)));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("rows_s10", name), &rows, |b, rows| {
            b.iter(|| {
                let mut acc = 0u64;
                for &id in &ids {
                    let prepared = family.prepare(id);
                    for row in rows {
                        acc = acc.wrapping_add(row.eval_prepared(prepared));
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    // Γ's hot operations: membership + uniform replacement, and the output
    // draw. Dominated by the position-map probe the FxHashMap swap targets.
    let ids = ids();
    let mut group = c.benchmark_group("sampling_memory");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for capacity in [10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("replace_uniform", capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut rng = SmallRng::seed_from_u64(1);
                    let mut gamma = SamplingMemory::new(capacity).unwrap();
                    for &id in &ids {
                        if gamma.is_full() {
                            gamma.replace_uniform(&mut rng, NodeId::new(id));
                        } else {
                            gamma.insert(NodeId::new(id));
                        }
                    }
                    black_box(gamma.len())
                })
            },
        );
    }
    group.bench_function("contains_plus_sample", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut gamma = SamplingMemory::new(10).unwrap();
        for id in 0..10u64 {
            gamma.insert(NodeId::new(id));
        }
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids {
                if gamma.contains(NodeId::new(id)) {
                    acc = acc.wrapping_add(1);
                }
                acc = acc.wrapping_add(gamma.sample_uniform(&mut rng).unwrap().as_u64());
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_fused(c: &mut Criterion) {
    // The lock-step cobegin pattern: fused record+estimate vs the split
    // record → estimate → floor sequence it replaces.
    let ids = ids();
    let mut group = c.benchmark_group("estimator_fused");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.bench_function("count_min_record_and_estimate", |b| {
        b.iter(|| {
            let mut sketch = CountMinSketch::with_dimensions(10, 5, 1).unwrap();
            let mut acc = 0u64;
            for &id in &ids {
                let (estimate, floor) = sketch.record_and_estimate(id);
                acc = acc.wrapping_add(estimate).wrapping_add(floor);
            }
            black_box(acc)
        })
    });
    group.bench_function("count_min_split_record_then_estimate", |b| {
        b.iter(|| {
            let mut sketch = CountMinSketch::with_dimensions(10, 5, 1).unwrap();
            let mut acc = 0u64;
            for &id in &ids {
                sketch.record(id);
                acc = acc.wrapping_add(sketch.estimate(id)).wrapping_add(sketch.floor_estimate());
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_row_updates(c: &mut Criterion) {
    // Chunked index-precompute row updates (the default record paths since
    // PR 4) against the retained rowwise scalar references: same cells,
    // same floors, different instruction scheduling.
    let ids = ids();
    let mut group = c.benchmark_group("sketch_row_updates");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.bench_function("count_min_unrolled", |b| {
        b.iter(|| {
            let mut sketch = CountMinSketch::with_dimensions(10, 5, 1).unwrap();
            let mut acc = 0u64;
            for &id in &ids {
                let (estimate, floor) = sketch.record_and_estimate(id);
                acc = acc.wrapping_add(estimate).wrapping_add(floor);
            }
            black_box(acc)
        })
    });
    group.bench_function("count_min_rowwise", |b| {
        b.iter(|| {
            let mut sketch = CountMinSketch::with_dimensions(10, 5, 1).unwrap();
            let mut acc = 0u64;
            for &id in &ids {
                let (estimate, floor) = sketch.record_and_estimate_rowwise(id);
                acc = acc.wrapping_add(estimate).wrapping_add(floor);
            }
            black_box(acc)
        })
    });
    group.bench_function("count_sketch_unrolled", |b| {
        b.iter(|| {
            let mut sketch = CountSketch::with_dimensions(50, 10, 1).unwrap();
            let mut acc = 0u64;
            for &id in &ids {
                let (estimate, floor) = sketch.record_and_estimate(id);
                acc = acc.wrapping_add(estimate).wrapping_add(floor);
            }
            black_box(acc)
        })
    });
    group.bench_function("count_sketch_rowwise", |b| {
        b.iter(|| {
            let mut sketch = CountSketch::with_dimensions(50, 10, 1).unwrap();
            let mut acc = 0u64;
            for &id in &ids {
                let (estimate, floor) = sketch.record_and_estimate_rowwise(id);
                acc = acc.wrapping_add(estimate).wrapping_add(floor);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let ids = ids();
    let mut sketch = CountMinSketch::with_dimensions(50, 10, 1).unwrap();
    for &id in &ids {
        sketch.record(id);
    }
    let mut group = c.benchmark_group("estimator_query");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.bench_function("count_min_estimate", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids {
                acc = acc.wrapping_add(sketch.estimate(id));
            }
            black_box(acc)
        })
    });
    group.bench_function("count_min_floor", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..STREAM_LEN {
                acc = acc.wrapping_add(sketch.floor_estimate());
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_hash_family,
    bench_memory,
    bench_fused,
    bench_row_updates,
    bench_record,
    bench_query
);
criterion_main!(benches);
