//! Micro-benchmarks of the frequency-estimation substrates (the paper's
//! Algorithm 2 and its alternatives).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uns_core::NodeId;
use uns_sketch::{CountMinSketch, CountSketch, ExactFrequencyOracle, FrequencyEstimator};
use uns_streams::adversary::peak_attack_distribution;
use uns_streams::IdStream;

const STREAM_LEN: usize = 10_000;

fn ids() -> Vec<u64> {
    IdStream::new(peak_attack_distribution(10_000).unwrap(), 3)
        .take(STREAM_LEN)
        .map(NodeId::as_u64)
        .collect()
}

fn bench_record(c: &mut Criterion) {
    let ids = ids();
    let mut group = c.benchmark_group("estimator_record");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for (k, s) in [(10usize, 5usize), (50, 10), (250, 10)] {
        group.bench_with_input(
            BenchmarkId::new("count_min", format!("k{k}_s{s}")),
            &(k, s),
            |b, &(k, s)| {
                b.iter(|| {
                    let mut sketch = CountMinSketch::with_dimensions(k, s, 1).unwrap();
                    for &id in &ids {
                        sketch.record(id);
                    }
                    black_box(sketch.total())
                })
            },
        );
    }
    group.bench_function("count_sketch_k50_s10", |b| {
        b.iter(|| {
            let mut sketch = CountSketch::with_dimensions(50, 10, 1).unwrap();
            for &id in &ids {
                sketch.record(id);
            }
            black_box(sketch.total())
        })
    });
    group.bench_function("exact_oracle", |b| {
        b.iter(|| {
            let mut oracle = ExactFrequencyOracle::new();
            for &id in &ids {
                oracle.record(id);
            }
            black_box(oracle.total())
        })
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let ids = ids();
    let mut sketch = CountMinSketch::with_dimensions(50, 10, 1).unwrap();
    for &id in &ids {
        sketch.record(id);
    }
    let mut group = c.benchmark_group("estimator_query");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.bench_function("count_min_estimate", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &id in &ids {
                acc = acc.wrapping_add(sketch.estimate(id));
            }
            black_box(acc)
        })
    });
    group.bench_function("count_min_floor", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..STREAM_LEN {
                acc = acc.wrapping_add(sketch.floor_estimate());
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_record, bench_query);
criterion_main!(benches);
