//! Incremental vs naive floor maintenance across the three estimators.
//!
//! The knowledge-free sampler queries the floor `min_σ` on *every* stream
//! element (Algorithm 3, line 6), so the cost of maintaining the minimum —
//! not just computing it once — is a first-order term of the per-element
//! budget. This group pits the incremental floor-estimate engine (the
//! `record_and_estimate` path, which keeps the floor up to date as counters
//! move) against a naive baseline that recomputes the floor with a full
//! scan after every record, on three stream shapes:
//!
//! * `uniform` — 10 000 ids drawn uniformly: rare-id-heavy, every element
//!   is a potential new minimum (the exact oracle's worst case);
//! * `zipf` — Zipf(1.2) skew: a few heavy hitters, a long rare tail;
//! * `targeted_flooding` — the paper's Fig. 7b attack: ≈ 50 identifiers
//!   over-represented over uniform honest traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uns_sketch::{CountMinSketch, CountSketch, ExactFrequencyOracle, FrequencyEstimator};
use uns_streams::adversary::targeted_flooding_distribution;
use uns_streams::{IdDistribution, IdStream};

const STREAM_LEN: usize = 10_000;

fn streams() -> Vec<(&'static str, Vec<u64>)> {
    let take = |dist: IdDistribution, seed: u64| {
        IdStream::new(dist, seed).take(STREAM_LEN).map(|id| id.as_u64()).collect::<Vec<u64>>()
    };
    vec![
        ("uniform", take(IdDistribution::uniform(10_000).unwrap(), 5)),
        ("zipf", take(IdDistribution::zipf(10_000, 1.2).unwrap(), 6)),
        ("targeted_flooding", take(targeted_flooding_distribution(1_000).unwrap(), 7)),
    ]
}

/// Naive floor for Count-Min: full scan over the touched (non-zero) cells.
fn count_min_naive_floor(sketch: &CountMinSketch) -> u64 {
    (0..sketch.depth())
        .flat_map(|r| sketch.row(r).iter().copied())
        .filter(|&c| c > 0)
        .min()
        .unwrap_or(0)
}

/// Naive floor for the Count sketch: full scan over |cell| of every cell.
fn count_sketch_naive_floor(sketch: &CountSketch) -> u64 {
    (0..sketch.depth())
        .flat_map(|r| sketch.row(r).iter().map(|c| c.unsigned_abs()))
        .min()
        .unwrap_or(0)
}

fn bench_floor_estimate(c: &mut Criterion) {
    let streams = streams();
    let mut group = c.benchmark_group("floor_estimate");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));

    for (name, ids) in &streams {
        group.bench_with_input(BenchmarkId::new("count_min_incremental", name), ids, |b, ids| {
            b.iter(|| {
                let mut sketch = CountMinSketch::with_dimensions(50, 10, 1).unwrap();
                let mut acc = 0u64;
                for &id in ids {
                    let (_, floor) = sketch.record_and_estimate(id);
                    acc = acc.wrapping_add(floor);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("count_min_naive", name), ids, |b, ids| {
            b.iter(|| {
                let mut sketch = CountMinSketch::with_dimensions(50, 10, 1).unwrap();
                let mut acc = 0u64;
                for &id in ids {
                    sketch.record(id);
                    acc = acc.wrapping_add(count_min_naive_floor(&sketch));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("count_sketch_incremental", name),
            ids,
            |b, ids| {
                b.iter(|| {
                    let mut sketch = CountSketch::with_dimensions(50, 10, 1).unwrap();
                    let mut acc = 0u64;
                    for &id in ids {
                        let (_, floor) = sketch.record_and_estimate(id);
                        acc = acc.wrapping_add(floor);
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("count_sketch_naive", name), ids, |b, ids| {
            b.iter(|| {
                let mut sketch = CountSketch::with_dimensions(50, 10, 1).unwrap();
                let mut acc = 0u64;
                for &id in ids {
                    sketch.record(id);
                    acc = acc.wrapping_add(count_sketch_naive_floor(&sketch));
                }
                black_box(acc)
            })
        });
        // Per-record tree maintenance but the floor never read: the cost
        // the floor-less ingestion path (record_unfloored) removes.
        group.bench_with_input(BenchmarkId::new("count_sketch_record", name), ids, |b, ids| {
            b.iter(|| {
                let mut sketch = CountSketch::with_dimensions(50, 10, 1).unwrap();
                for &id in ids {
                    sketch.record(id);
                }
                black_box(sketch.floor_estimate())
            })
        });
        // The acceptance-grade configuration (k=250, s=10 — the accuracy-
        // comparable width from the equal-memory ablations). The published
        // floor is the mean row load; `min_abs_cell()` is the diagnostic
        // the tournament tree feeds, so the second id reads it at a
        // realistic per-batch cadence rather than per element.
        group.bench_with_input(
            BenchmarkId::new("count_sketch_record_k250_s10", name),
            ids,
            |b, ids| {
                b.iter(|| {
                    let mut sketch = CountSketch::with_dimensions(250, 10, 1).unwrap();
                    for &id in ids {
                        sketch.record(id);
                    }
                    black_box(sketch.floor_estimate())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("count_sketch_record_min_cell_every_1k_k250_s10", name),
            ids,
            |b, ids| {
                b.iter(|| {
                    let mut sketch = CountSketch::with_dimensions(250, 10, 1).unwrap();
                    let mut acc = 0u64;
                    for chunk in ids.chunks(1_000) {
                        for &id in chunk {
                            sketch.record(id);
                        }
                        acc = acc.wrapping_add(sketch.min_abs_cell());
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("count_sketch_unfloored", name), ids, |b, ids| {
            b.iter(|| {
                let mut sketch = CountSketch::with_dimensions(50, 10, 1).unwrap();
                // One tree rebuild per 4096-element batch instead of
                // O(log k·s) maintenance per touched cell.
                for batch in ids.chunks(4096) {
                    sketch.record_unfloored(batch);
                }
                black_box(sketch.floor_estimate())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("exact_oracle_incremental", name),
            ids,
            |b, ids| {
                b.iter(|| {
                    let mut oracle = ExactFrequencyOracle::new();
                    let mut acc = 0u64;
                    for &id in ids {
                        let (_, floor) = oracle.record_and_estimate(id);
                        acc = acc.wrapping_add(floor);
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("exact_oracle_naive", name), ids, |b, ids| {
            b.iter(|| {
                let mut oracle = ExactFrequencyOracle::new();
                let mut acc = 0u64;
                for &id in ids {
                    oracle.record(id);
                    let naive = oracle.iter().map(|(_, count)| count).min().unwrap_or(0);
                    acc = acc.wrapping_add(naive);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_floor_estimate);
criterion_main!(benches);
