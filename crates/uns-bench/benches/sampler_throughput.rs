//! Per-element throughput of every sampling strategy.
//!
//! The paper requires "the amount of computation per data element of the
//! stream must be low to keep pace with the data stream" (§III-A); this
//! bench quantifies it for each strategy at the paper's Fig. 7 parameters
//! and across sketch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uns_core::{
    KnowledgeFreeSampler, MinWiseSamplerArray, NodeId, NodeSampler, OmniscientSampler,
    ReservoirSampler,
};
use uns_sketch::{CountSketch, FrequencyEstimator, HashFamilyKind};
use uns_streams::adversary::peak_attack_distribution;
use uns_streams::IdStream;

const STREAM_LEN: usize = 10_000;

fn stream(n: usize) -> Vec<NodeId> {
    IdStream::new(peak_attack_distribution(n).unwrap(), 7).take(STREAM_LEN).collect()
}

fn feed_all(sampler: &mut dyn NodeSampler, stream: &[NodeId]) -> u64 {
    let mut acc = 0u64;
    for &id in stream {
        acc = acc.wrapping_add(sampler.feed(id).as_u64());
    }
    acc
}

fn bench_strategies(c: &mut Criterion) {
    let n = 1_000;
    let ids = stream(n);
    let probs = peak_attack_distribution(n).unwrap().probabilities().to_vec();
    let mut group = c.benchmark_group("sampler_feed");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));

    group.bench_function("omniscient(c=10)", |b| {
        b.iter(|| {
            let mut sampler = OmniscientSampler::new(10, &probs, 1).unwrap();
            black_box(feed_all(&mut sampler, &ids))
        })
    });
    group.bench_function("knowledge_free(c=10,k=10,s=5)", |b| {
        b.iter(|| {
            let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 1).unwrap();
            black_box(feed_all(&mut sampler, &ids))
        })
    });
    // The same feed with multiply-shift rows: what the weaker (factor-2
    // approximate) collision bound buys back in per-element hashing cost.
    for (k, s) in [(10usize, 5usize), (50, 10)] {
        group.bench_with_input(
            BenchmarkId::new("knowledge_free_multiply_shift", format!("c10_k{k}_s{s}")),
            &(k, s),
            |b, &(k, s)| {
                b.iter(|| {
                    let mut sampler = KnowledgeFreeSampler::with_count_min_family(
                        10,
                        k,
                        s,
                        1,
                        HashFamilyKind::MultiplyShift,
                    )
                    .unwrap();
                    black_box(feed_all(&mut sampler, &ids))
                })
            },
        );
    }
    // The Count-sketch ablation at two sizes: the paper-adjacent k=50 and
    // the accuracy-comparable k=250 (ε ≈ 0.011), where the old O(k·s)
    // per-element floor scan dominated the whole feed.
    for k in [50usize, 250] {
        group.bench_with_input(
            BenchmarkId::new("knowledge_free_count_sketch", format!("c10_k{k}_s10")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let estimator = CountSketch::with_dimensions(k, 10, 1).unwrap();
                    let mut sampler = KnowledgeFreeSampler::new(10, estimator, 1).unwrap();
                    black_box(feed_all(&mut sampler, &ids))
                })
            },
        );
    }
    group.bench_function("adaptive_omniscient(c=10)", |b| {
        b.iter(|| {
            let mut sampler = KnowledgeFreeSampler::adaptive_omniscient(10, 1).unwrap();
            black_box(feed_all(&mut sampler, &ids))
        })
    });
    group.bench_function("reservoir(c=10)", |b| {
        b.iter(|| {
            let mut sampler = ReservoirSampler::new(10, 1).unwrap();
            black_box(feed_all(&mut sampler, &ids))
        })
    });
    group.bench_function("minwise_array(c=10)", |b| {
        b.iter(|| {
            let mut sampler = MinWiseSamplerArray::new(10, 1).unwrap();
            black_box(feed_all(&mut sampler, &ids))
        })
    });
    group.finish();
}

fn bench_sketch_scaling(c: &mut Criterion) {
    // The knowledge-free per-element cost scales with the sketch depth s;
    // this ablation backs the paper's "small number of operations" claim.
    let ids = stream(1_000);
    let mut group = c.benchmark_group("knowledge_free_sketch_scaling");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for (k, s) in [(10usize, 5usize), (50, 10), (250, 10), (50, 40)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_s{s}")),
            &(k, s),
            |b, &(k, s)| {
                b.iter(|| {
                    let mut sampler = KnowledgeFreeSampler::with_count_min(10, k, s, 1).unwrap();
                    black_box(feed_all(&mut sampler, &ids))
                })
            },
        );
    }
    group.finish();
}

fn bench_batch_and_ingest(c: &mut Criterion) {
    // The input-only and batched entry points added for backlog ingestion:
    // same per-element state evolution as feed, minus wasted output draws
    // and per-call dispatch. The `*_plain_coins` ids drive the identical
    // coin stream through an unblocked SmallRng (the pre-PR-4 default), so
    // the blocked-vs-per-element coin cost is measured head to head.
    use rand::rngs::SmallRng;
    use uns_sketch::CountMinSketch;
    let ids = stream(1_000);
    let mut group = c.benchmark_group("knowledge_free_entry_points");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.bench_function("feed", |b| {
        b.iter(|| {
            let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 1).unwrap();
            black_box(feed_all(&mut sampler, &ids))
        })
    });
    group.bench_function("feed_plain_coins", |b| {
        b.iter(|| {
            let mut sampler =
                KnowledgeFreeSampler::<CountMinSketch, SmallRng>::with_count_min_rng(10, 10, 5, 1)
                    .unwrap();
            black_box(feed_all(&mut sampler, &ids))
        })
    });
    group.bench_function("feed_batch", |b| {
        let mut out = Vec::with_capacity(STREAM_LEN);
        b.iter(|| {
            let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 1).unwrap();
            out.clear();
            sampler.feed_batch(&ids, &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function("feed_batch_plain_coins", |b| {
        let mut out = Vec::with_capacity(STREAM_LEN);
        b.iter(|| {
            let mut sampler =
                KnowledgeFreeSampler::<CountMinSketch, SmallRng>::with_count_min_rng(10, 10, 5, 1)
                    .unwrap();
            out.clear();
            sampler.feed_batch(&ids, &mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function("ingest", |b| {
        b.iter(|| {
            let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 1).unwrap();
            for &id in &ids {
                sampler.ingest(id);
            }
            black_box(sampler.sample())
        })
    });
    group.finish();
}

fn bench_sharded_ingestion(c: &mut Criterion) {
    // The multi-million-element scenario: sketching a 4M-element backlog
    // across worker threads (exact counter-wise merge).
    use uns_sim::ShardedIngestion;
    let ids: Vec<NodeId> =
        IdStream::new(peak_attack_distribution(100_000).unwrap(), 9).take(4_000_000).collect();
    let mut group = c.benchmark_group("sharded_ingestion_4m");
    group.throughput(Throughput::Elements(ids.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            let ingestion = ShardedIngestion::new(10, 5, 42, shards).unwrap();
            b.iter(|| black_box(ingestion.sketch_stream(&ids).unwrap().total()))
        });
    }
    group.finish();
}

fn bench_parallel_pipeline(c: &mut Criterion) {
    // The end-to-end parallel sampling pipeline vs sequential ingestion
    // over a 4M-element backlog: identical (bit-equal) results, the sketch
    // work spread over shard workers. On a single-vCPU host the pipeline
    // pays its ~2× sketch-pass overhead with no cores to amortize it; the
    // shard sweep shows the scaling shape wherever cores exist.
    use uns_sim::ShardedIngestion;
    use uns_sketch::CountMinSketch;
    let ids: Vec<NodeId> =
        IdStream::new(peak_attack_distribution(100_000).unwrap(), 9).take(4_000_000).collect();
    let mut group = c.benchmark_group("parallel_pipeline_4m");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("sequential_ingest", |b| {
        b.iter(|| {
            let estimator = CountMinSketch::with_dimensions(10, 5, 42).unwrap();
            let mut sampler = KnowledgeFreeSampler::new(10, estimator, 7).unwrap();
            for &id in &ids {
                sampler.ingest(id);
            }
            black_box(sampler.sample())
        })
    });
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("pipeline_ingest", shards),
            &shards,
            |b, &shards| {
                let ingestion = ShardedIngestion::new(10, 5, 42, shards).unwrap();
                b.iter(|| {
                    let (mut sampler, stats) = ingestion.pipeline_ingest(&ids, 10, 7).unwrap();
                    black_box((sampler.sample(), stats.admitted))
                })
            },
        );
    }
    // The retained two-pass (re-hashing candidate pass) reference, for the
    // delta-log-vs-two-pass comparison at matching shard counts.
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("pipeline_ingest_two_pass", shards),
            &shards,
            |b, &shards| {
                let ingestion = ShardedIngestion::new(10, 5, 42, shards).unwrap();
                b.iter(|| {
                    let (mut sampler, stats) =
                        ingestion.pipeline_ingest_two_pass(&ids, 10, 7).unwrap();
                    black_box((sampler.sample(), stats.admitted))
                })
            },
        );
    }
    group.finish();
}

fn bench_memory_scaling(c: &mut Criterion) {
    // Fig. 10 sweeps c up to 1000: confirm feeding stays O(1) in c.
    let ids = stream(1_000);
    let mut group = c.benchmark_group("knowledge_free_memory_scaling");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    for capacity in [10usize, 100, 300, 700] {
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &capacity, |b, &cap| {
            b.iter(|| {
                let mut sampler = KnowledgeFreeSampler::with_count_min(cap, 10, 5, 1).unwrap();
                black_box(feed_all(&mut sampler, &ids))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_batch_and_ingest,
    bench_sharded_ingestion,
    bench_parallel_pipeline,
    bench_sketch_scaling,
    bench_memory_scaling
);
criterion_main!(benches);
