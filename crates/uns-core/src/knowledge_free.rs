//! The knowledge-free one-pass strategy — the paper's Algorithm 3.
//!
//! The knowledge-free strategy makes *no assumption* about the input
//! stream: neither its length, nor the number of distinct identifiers, nor
//! their frequency distribution. It runs the paper's Algorithm 2 (a
//! Count-Min sketch, `uns_sketch::CountMinSketch`) in lock-step with the
//! sampling loop (the paper's `cobegin`): every identifier `j` is first
//! recorded in the sketch, then the insertion probability is computed from
//! sketch state only:
//!
//! ```text
//! a_j = min_σ / f̂_j
//! ```
//!
//! where `f̂_j` is the sketch estimate for `j` and `min_σ` the global
//! minimum over all `k × s` counters (Algorithm 3, line 6). Eviction is
//! uniform over `Γ` (`r_k = 1/c`, line 11) and the output is a uniform
//! resident (line 13).
//!
//! The strategy is generic over the [`FrequencyEstimator`]: plugging in the
//! exact oracle instead of the sketch yields the *adaptive omniscient*
//! sampler (the paper's Algorithm 1 with `p_j` learned exactly on the fly),
//! and plugging in a Count sketch gives the estimator ablation measured by
//! the benchmark harness.

use crate::error::CoreError;
use crate::memory::SamplingMemory;
use crate::node_id::NodeId;
use crate::sampler::NodeSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uns_sketch::{CountMinSketch, ExactFrequencyOracle, FrequencyEstimator};

/// The paper's Algorithm 3: knowledge-free Byzantine-tolerant node
/// sampling, generic over the frequency estimator `E`.
///
/// # Example
///
/// ```
/// use uns_core::{KnowledgeFreeSampler, NodeId, NodeSampler};
///
/// # fn main() -> Result<(), uns_core::CoreError> {
/// // The paper's Figure 7 settings: c = 10, k = 10, s = 5.
/// let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 1)?;
/// let out = sampler.feed(NodeId::new(42));
/// assert_eq!(out, NodeId::new(42)); // sole resident so far
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct KnowledgeFreeSampler<E = CountMinSketch> {
    memory: SamplingMemory,
    estimator: E,
    rng: StdRng,
}

impl KnowledgeFreeSampler<CountMinSketch> {
    /// Creates the sampler with memory size `c = capacity` and a Count-Min
    /// sketch of `k = width` columns and `s = depth` rows — the exact
    /// configuration of the paper's experiments.
    ///
    /// The single `seed` deterministically derives both the sketch's hash
    /// functions and the sampler's random coins.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// sketch dimension errors as [`CoreError::Sketch`].
    pub fn with_count_min(
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let sketch_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let sketch = CountMinSketch::with_dimensions(width, depth, sketch_seed)?;
        Self::new(capacity, sketch, seed)
    }

    /// Creates the sampler sizing the sketch from accuracy targets
    /// (`k = ⌈e/ε⌉`, `s = ⌈ln(1/δ)⌉`), the parametrization of the paper's
    /// Algorithm 2.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// invalid `ε`/`δ` as [`CoreError::Sketch`].
    pub fn with_error_bounds(
        capacity: usize,
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let sketch_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let sketch = CountMinSketch::with_error_bounds(epsilon, delta, sketch_seed)?;
        Self::new(capacity, sketch, seed)
    }
}

impl KnowledgeFreeSampler<ExactFrequencyOracle> {
    /// Creates the *adaptive omniscient* sampler: Algorithm 3 driven by
    /// exact frequencies instead of sketched ones, i.e. Algorithm 1 with
    /// `p_j` learned on the fly at full-space cost.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn adaptive_omniscient(capacity: usize, seed: u64) -> Result<Self, CoreError> {
        Self::new(capacity, ExactFrequencyOracle::new(), seed)
    }
}

impl<E: FrequencyEstimator> KnowledgeFreeSampler<E> {
    /// Creates the sampler from an explicit estimator instance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: usize, estimator: E, seed: u64) -> Result<Self, CoreError> {
        Ok(Self {
            memory: SamplingMemory::new(capacity)?,
            estimator,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Read access to the underlying frequency estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// The insertion probability `a_j = min_σ/f̂_j` the sampler would use
    /// for `id` *right now* (without recording anything).
    ///
    /// Returns 1 when the estimator has no information yet (`f̂_j = 0`).
    pub fn insertion_probability_estimate(&self, id: NodeId) -> f64 {
        let f_hat = self.estimator.estimate(id.as_u64());
        if f_hat == 0 {
            return 1.0;
        }
        (self.estimator.floor_estimate() as f64 / f_hat as f64).min(1.0)
    }
}

impl<E: FrequencyEstimator> NodeSampler for KnowledgeFreeSampler<E> {
    fn feed(&mut self, id: NodeId) -> NodeId {
        // cobegin (Algorithm 3, lines 1–3): the estimator reads the element
        // first, so f̂_j accounts for this occurrence.
        self.estimator.record(id.as_u64());
        if !self.memory.is_full() {
            self.memory.insert(id); // no-op when already resident
        } else if !self.memory.contains(id) {
            let a_j = self.insertion_probability_estimate(id);
            if self.rng.gen::<f64>() < a_j {
                // r_k = 1/c: uniform eviction (Algorithm 3, line 11).
                self.memory.replace_uniform(&mut self.rng, id);
            }
        }
        self.memory
            .sample_uniform(&mut self.rng)
            .expect("memory is non-empty after feeding at least one identifier")
    }

    fn sample(&mut self) -> Option<NodeId> {
        self.memory.sample_uniform(&mut self.rng)
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.memory.iter().copied().collect()
    }

    fn capacity(&self) -> usize {
        self.memory.capacity()
    }

    fn strategy_name(&self) -> &'static str {
        "knowledge-free"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use uns_sketch::CountSketch;

    #[test]
    fn constructor_validates_capacity_and_sketch() {
        assert_eq!(
            KnowledgeFreeSampler::with_count_min(0, 10, 5, 0).unwrap_err(),
            CoreError::ZeroCapacity
        );
        assert!(matches!(
            KnowledgeFreeSampler::with_count_min(5, 0, 5, 0),
            Err(CoreError::Sketch(_))
        ));
        assert!(matches!(
            KnowledgeFreeSampler::with_error_bounds(5, 0.0, 0.1, 0),
            Err(CoreError::Sketch(_))
        ));
        assert!(KnowledgeFreeSampler::with_error_bounds(5, 0.3, 0.01, 0).is_ok());
        assert!(KnowledgeFreeSampler::adaptive_omniscient(5, 0).is_ok());
    }

    #[test]
    fn insertion_probability_reflects_sketch_state() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(2, 16, 4, 3).unwrap();
        // No information yet.
        assert_eq!(sampler.insertion_probability_estimate(NodeId::new(5)), 1.0);
        // Flood one id among occasional rare ids: the flooded id's a_j must
        // collapse while rare ids keep a_j = 1.
        for i in 0..2_000u64 {
            sampler.feed(NodeId::new(5));
            if i % 50 == 0 {
                sampler.feed(NodeId::new(100 + i));
            }
        }
        let a_flooded = sampler.insertion_probability_estimate(NodeId::new(5));
        assert!(a_flooded < 0.05, "flooded id keeps a_j = {a_flooded}");
        let a_rare = sampler.insertion_probability_estimate(NodeId::new(2_100));
        assert!(a_rare > 0.5, "rare id got a_j = {a_rare}");
    }

    #[test]
    fn output_is_always_a_memory_resident() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(4, 8, 3, 9).unwrap();
        for i in 0..2_000u64 {
            let out = sampler.feed(NodeId::new(i % 32));
            let residents: HashSet<NodeId> = sampler.memory_contents().into_iter().collect();
            assert!(residents.contains(&out));
            assert!(residents.len() <= 4);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let stream: Vec<NodeId> = (0..800u64).map(|i| NodeId::new(i * 13 % 64)).collect();
        let mut a = KnowledgeFreeSampler::with_count_min(6, 12, 4, 77).unwrap();
        let mut b = KnowledgeFreeSampler::with_count_min(6, 12, 4, 77).unwrap();
        assert_eq!(a.run(stream.clone()), b.run(stream.clone()));
        let mut c = KnowledgeFreeSampler::with_count_min(6, 12, 4, 78).unwrap();
        // Different seed: overwhelmingly likely to diverge somewhere.
        assert_ne!(a.run(stream.clone()), c.run(stream));
    }

    #[test]
    fn adaptive_omniscient_uses_exact_counts() {
        let mut sampler = KnowledgeFreeSampler::adaptive_omniscient(3, 5).unwrap();
        for _ in 0..10 {
            sampler.feed(NodeId::new(1));
        }
        sampler.feed(NodeId::new(2));
        assert_eq!(sampler.estimator().frequency(1), 10);
        assert_eq!(sampler.estimator().frequency(2), 1);
        // a_1 = min/f_1 = 1/10; a_2 = 1/1.
        assert!((sampler.insertion_probability_estimate(NodeId::new(1)) - 0.1).abs() < 1e-12);
        assert_eq!(sampler.insertion_probability_estimate(NodeId::new(2)), 1.0);
    }

    #[test]
    fn works_with_count_sketch_estimator() {
        let estimator = CountSketch::with_dimensions(32, 5, 11).unwrap();
        let mut sampler = KnowledgeFreeSampler::new(4, estimator, 11).unwrap();
        for i in 0..500u64 {
            sampler.feed(NodeId::new(i % 20));
        }
        assert_eq!(sampler.memory_contents().len(), 4);
        assert_eq!(sampler.strategy_name(), "knowledge-free");
    }

    #[test]
    fn sample_before_and_after_first_feed() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(2, 4, 2, 1).unwrap();
        assert_eq!(sampler.sample(), None);
        sampler.feed(NodeId::new(9));
        assert_eq!(sampler.sample(), Some(NodeId::new(9)));
        assert_eq!(sampler.capacity(), 2);
    }
}
