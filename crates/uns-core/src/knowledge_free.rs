//! The knowledge-free one-pass strategy — the paper's Algorithm 3.
//!
//! The knowledge-free strategy makes *no assumption* about the input
//! stream: neither its length, nor the number of distinct identifiers, nor
//! their frequency distribution. It runs the paper's Algorithm 2 (a
//! Count-Min sketch, `uns_sketch::CountMinSketch`) in lock-step with the
//! sampling loop (the paper's `cobegin`): every identifier `j` is first
//! recorded in the sketch, then the insertion probability is computed from
//! sketch state only:
//!
//! ```text
//! a_j = min_σ / f̂_j
//! ```
//!
//! where `f̂_j` is the sketch estimate for `j` and `min_σ` the sampling
//! floor — the minimum over the *touched* counters, maintained
//! incrementally by the estimator's floor-estimate engine
//! (`uns_sketch::min_tracker`; see
//! [`FrequencyEstimator::floor_estimate`] for the exact per-estimator
//! semantics, including the Count-sketch signed-counter caveat). Eviction
//! is uniform over `Γ` (`r_k = 1/c`, line 11) and the output is a uniform
//! resident (line 13).
//!
//! # Hot-path layout
//!
//! The per-element cost is dominated by three things, all addressed here:
//!
//! * the sketch is driven through the **fused**
//!   [`FrequencyEstimator::record_and_estimate`] operation, so each row of
//!   the sketch is hashed once per element (the lock-step `cobegin` needs
//!   both `f̂_j` and `min_σ` anyway — recording and estimating separately
//!   would hash everything twice), and `min_σ` is an O(1) read off the
//!   estimator's floor engine rather than a counter scan;
//! * the sampler's per-element coins (one insertion coin, one output draw)
//!   come from a pluggable RNG `R`, defaulting to the cheap
//!   [`rand::rngs::SmallRng`] (xoshiro256++). The coins only decide
//!   admission/eviction among *already-sketch-filtered* candidates, so a
//!   fast non-cryptographic generator is statistically sufficient; pass
//!   [`rand::rngs::StdRng`] (ChaCha12) via
//!   [`KnowledgeFreeSampler::with_count_min_rng`] to reproduce runs made
//!   with the hardened generator;
//! * input-only consumers use [`NodeSampler::ingest`] /
//!   [`NodeSampler::feed_batch`] (see the trait docs for the contract), so
//!   no uniform output sample is computed when nobody reads it.
//!
//! The strategy is generic over the [`FrequencyEstimator`]: plugging in the
//! exact oracle instead of the sketch yields the *adaptive omniscient*
//! sampler (the paper's Algorithm 1 with `p_j` learned exactly on the fly),
//! and plugging in a Count sketch gives the estimator ablation measured by
//! the benchmark harness.

use crate::error::CoreError;
use crate::memory::SamplingMemory;
use crate::node_id::NodeId;
use crate::sampler::NodeSampler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uns_sketch::{CountMinSketch, ExactFrequencyOracle, FrequencyEstimator};

/// The paper's Algorithm 3: knowledge-free Byzantine-tolerant node
/// sampling, generic over the frequency estimator `E` and the coin
/// generator `R`.
///
/// # Example
///
/// ```
/// use uns_core::{KnowledgeFreeSampler, NodeId, NodeSampler};
///
/// # fn main() -> Result<(), uns_core::CoreError> {
/// // The paper's Figure 7 settings: c = 10, k = 10, s = 5.
/// let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 1)?;
/// let out = sampler.feed(NodeId::new(42));
/// assert_eq!(out, NodeId::new(42)); // sole resident so far
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct KnowledgeFreeSampler<E = CountMinSketch, R = SmallRng> {
    memory: SamplingMemory,
    estimator: E,
    rng: R,
}

impl KnowledgeFreeSampler<CountMinSketch> {
    /// Creates the sampler with memory size `c = capacity` and a Count-Min
    /// sketch of `k = width` columns and `s = depth` rows — the exact
    /// configuration of the paper's experiments.
    ///
    /// The single `seed` deterministically derives both the sketch's hash
    /// functions and the sampler's random coins (drawn from the default
    /// fast [`SmallRng`]; use
    /// [`KnowledgeFreeSampler::with_count_min_rng`] to pick the generator).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// sketch dimension errors as [`CoreError::Sketch`].
    pub fn with_count_min(
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::with_count_min_rng(capacity, width, depth, seed)
    }

    /// Creates the sampler sizing the sketch from accuracy targets
    /// (`k = ⌈e/ε⌉`, `s = ⌈ln(1/δ)⌉`), the parametrization of the paper's
    /// Algorithm 2.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// invalid `ε`/`δ` as [`CoreError::Sketch`].
    pub fn with_error_bounds(
        capacity: usize,
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let sketch_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let sketch = CountMinSketch::with_error_bounds(epsilon, delta, sketch_seed)?;
        Self::new(capacity, sketch, seed)
    }
}

impl<R: Rng + SeedableRng> KnowledgeFreeSampler<CountMinSketch, R> {
    /// [`KnowledgeFreeSampler::with_count_min`] with an explicit coin
    /// generator, e.g. `StdRng` (ChaCha12) to reproduce traces recorded
    /// with the hardened generator:
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use uns_core::{KnowledgeFreeSampler, NodeSampler, NodeId};
    /// use uns_sketch::CountMinSketch;
    ///
    /// let mut sampler =
    ///     KnowledgeFreeSampler::<CountMinSketch, StdRng>::with_count_min_rng(10, 10, 5, 1)
    ///         .unwrap();
    /// sampler.feed(NodeId::new(3));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// sketch dimension errors as [`CoreError::Sketch`].
    pub fn with_count_min_rng(
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let sketch_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let sketch = CountMinSketch::with_dimensions(width, depth, sketch_seed)?;
        Self::with_estimator_and_rng(capacity, sketch, seed)
    }
}

impl KnowledgeFreeSampler<ExactFrequencyOracle> {
    /// Creates the *adaptive omniscient* sampler: Algorithm 3 driven by
    /// exact frequencies instead of sketched ones, i.e. Algorithm 1 with
    /// `p_j` learned on the fly at full-space cost.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn adaptive_omniscient(capacity: usize, seed: u64) -> Result<Self, CoreError> {
        Self::new(capacity, ExactFrequencyOracle::new(), seed)
    }
}

impl<E: FrequencyEstimator> KnowledgeFreeSampler<E> {
    /// Creates the sampler from an explicit estimator instance, using the
    /// default fast coin generator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: usize, estimator: E, seed: u64) -> Result<Self, CoreError> {
        Self::with_estimator_and_rng(capacity, estimator, seed)
    }
}

impl<E: FrequencyEstimator, R: Rng + SeedableRng> KnowledgeFreeSampler<E, R> {
    /// Creates the sampler from an explicit estimator and coin generator
    /// type — the fully general constructor behind every other one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn with_estimator_and_rng(
        capacity: usize,
        estimator: E,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Ok(Self { memory: SamplingMemory::new(capacity)?, estimator, rng: R::seed_from_u64(seed) })
    }
}

impl<E: FrequencyEstimator, R: Rng> KnowledgeFreeSampler<E, R> {
    /// Read access to the underlying frequency estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// The insertion probability `a_j = min_σ/f̂_j` the sampler would use
    /// for `id` *right now* (without recording anything).
    ///
    /// Returns 1 when the estimator has no information yet (`f̂_j = 0`).
    pub fn insertion_probability_estimate(&self, id: NodeId) -> f64 {
        Self::admission_probability(
            self.estimator.estimate(id.as_u64()),
            self.estimator.floor_estimate(),
        )
    }

    /// The admission rule `a_j = min(min_σ/f̂_j, 1)`, with `f̂_j = 0`
    /// treated as "no information ⇒ admit" — the single definition used by
    /// both the public probe above and the feed path.
    fn admission_probability(f_hat: u64, min_sigma: u64) -> f64 {
        if f_hat == 0 {
            return 1.0;
        }
        (min_sigma as f64 / f_hat as f64).min(1.0)
    }

    /// The input half of [`NodeSampler::feed`]: record in the sketch, then
    /// apply the admission/eviction rule. No output draw.
    #[inline]
    fn absorb(&mut self, id: NodeId) {
        // cobegin (Algorithm 3, lines 1–3): the estimator reads the element
        // first, so f̂_j accounts for this occurrence. The fused operation
        // also hands back min_σ, saving the second hashing pass.
        let (f_hat, min_sigma) = self.estimator.record_and_estimate(id.as_u64());
        self.absorb_precomputed(id, f_hat, min_sigma);
    }

    /// The memory-and-coins half of [`NodeSampler::ingest`], taking the
    /// fused `(f̂_j, min_σ)` pair from the caller instead of recording `id`
    /// in this sampler's own estimator. Returns `true` if `id` entered `Γ`.
    ///
    /// This is the replay half of a **parallel sampling pipeline**
    /// (`uns_sim::ShardedIngestion`): shard workers compute, for every
    /// stream element, exactly the `(f̂_j, min_σ)` the sequential sampler
    /// would have seen at that position (Count-Min prefix states are
    /// reconstructible by merging earlier chunks), and a single replay
    /// thread calls this method in stream order. Because the method
    /// consumes random coins in exactly the order `ingest` does — one
    /// admission coin per full-memory non-resident element, one eviction
    /// draw per admission — the resulting memory **and** RNG state are
    /// bit-equal to sequential ingestion.
    ///
    /// The estimator is deliberately *not* touched: a caller that replays
    /// precomputed admissions must install the matching final estimator
    /// state afterwards via [`KnowledgeFreeSampler::install_estimator`],
    /// or subsequent feeds will estimate from a stale (typically empty)
    /// sketch.
    pub fn absorb_precomputed(&mut self, id: NodeId, f_hat: u64, min_sigma: u64) -> bool {
        if !self.memory.is_full() {
            self.memory.insert(id) // no-op when already resident
        } else if !self.memory.contains(id) {
            let a_j = Self::admission_probability(f_hat, min_sigma);
            if self.rng.gen::<f64>() < a_j {
                // r_k = 1/c: uniform eviction (Algorithm 3, line 11).
                self.memory.replace_uniform(&mut self.rng, id).is_some()
            } else {
                false
            }
        } else {
            false
        }
    }

    /// [`KnowledgeFreeSampler::absorb_precomputed`] plus the uniform output
    /// draw — the precomputed counterpart of [`NodeSampler::feed`], with
    /// the identical coin order.
    ///
    /// # Panics
    ///
    /// Panics if called before anything was absorbed (empty `Γ`), exactly
    /// like `feed` never can be observed empty after its own absorb.
    pub fn feed_precomputed(&mut self, id: NodeId, f_hat: u64, min_sigma: u64) -> NodeId {
        self.absorb_precomputed(id, f_hat, min_sigma);
        self.memory
            .sample_uniform(&mut self.rng)
            .expect("memory is non-empty after absorbing at least one identifier")
    }

    /// Replaces the sampler's estimator, e.g. with the merged sketch of a
    /// sharded ingestion after a precomputed replay. The memory `Γ` and the
    /// coin generator are left untouched.
    pub fn install_estimator(&mut self, estimator: E) {
        self.estimator = estimator;
    }
}

impl<E: FrequencyEstimator, R: Rng> NodeSampler for KnowledgeFreeSampler<E, R> {
    fn feed(&mut self, id: NodeId) -> NodeId {
        self.absorb(id);
        self.memory
            .sample_uniform(&mut self.rng)
            .expect("memory is non-empty after feeding at least one identifier")
    }

    /// Input-only path: identical state evolution to [`NodeSampler::feed`],
    /// minus the output draw (see the trait-level contract).
    fn ingest(&mut self, id: NodeId) {
        self.absorb(id);
    }

    fn feed_batch(&mut self, ids: &[NodeId], out: &mut Vec<NodeId>) {
        out.reserve(ids.len());
        for &id in ids {
            self.absorb(id);
            out.push(
                self.memory
                    .sample_uniform(&mut self.rng)
                    .expect("memory is non-empty after feeding at least one identifier"),
            );
        }
    }

    fn sample(&mut self) -> Option<NodeId> {
        self.memory.sample_uniform(&mut self.rng)
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.memory.iter().copied().collect()
    }

    fn capacity(&self) -> usize {
        self.memory.capacity()
    }

    fn strategy_name(&self) -> &'static str {
        "knowledge-free"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use std::collections::HashSet;
    use uns_sketch::CountSketch;

    #[test]
    fn constructor_validates_capacity_and_sketch() {
        assert_eq!(
            KnowledgeFreeSampler::with_count_min(0, 10, 5, 0).unwrap_err(),
            CoreError::ZeroCapacity
        );
        assert!(matches!(
            KnowledgeFreeSampler::with_count_min(5, 0, 5, 0),
            Err(CoreError::Sketch(_))
        ));
        assert!(matches!(
            KnowledgeFreeSampler::with_error_bounds(5, 0.0, 0.1, 0),
            Err(CoreError::Sketch(_))
        ));
        assert!(KnowledgeFreeSampler::with_error_bounds(5, 0.3, 0.01, 0).is_ok());
        assert!(KnowledgeFreeSampler::adaptive_omniscient(5, 0).is_ok());
    }

    #[test]
    fn insertion_probability_reflects_sketch_state() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(2, 32, 4, 3).unwrap();
        // No information yet.
        assert_eq!(sampler.insertion_probability_estimate(NodeId::new(5)), 1.0);
        // Flood one id among occasional rare ids: the flooded id's a_j must
        // collapse while rare ids keep a_j = 1.
        for i in 0..2_000u64 {
            sampler.feed(NodeId::new(5));
            if i % 50 == 0 {
                sampler.feed(NodeId::new(100 + i));
            }
        }
        let a_flooded = sampler.insertion_probability_estimate(NodeId::new(5));
        assert!(a_flooded < 0.05, "flooded id keeps a_j = {a_flooded}");
        let a_rare = sampler.insertion_probability_estimate(NodeId::new(2_100));
        assert!(a_rare > 0.5, "rare id got a_j = {a_rare}");
    }

    #[test]
    fn output_is_always_a_memory_resident() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(4, 8, 3, 9).unwrap();
        for i in 0..2_000u64 {
            let out = sampler.feed(NodeId::new(i % 32));
            let residents: HashSet<NodeId> = sampler.memory_contents().into_iter().collect();
            assert!(residents.contains(&out));
            assert!(residents.len() <= 4);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let stream: Vec<NodeId> = (0..800u64).map(|i| NodeId::new(i * 13 % 64)).collect();
        let mut a = KnowledgeFreeSampler::with_count_min(6, 12, 4, 77).unwrap();
        let mut b = KnowledgeFreeSampler::with_count_min(6, 12, 4, 77).unwrap();
        assert_eq!(a.run(stream.clone()), b.run(stream.clone()));
        let mut c = KnowledgeFreeSampler::with_count_min(6, 12, 4, 78).unwrap();
        // Different seed: overwhelmingly likely to diverge somewhere.
        assert_ne!(a.run(stream.clone()), c.run(stream));
    }

    #[test]
    fn explicit_rng_choice_is_deterministic_per_generator() {
        let stream: Vec<NodeId> = (0..500u64).map(|i| NodeId::new(i * 7 % 40)).collect();
        let mut fast_a =
            KnowledgeFreeSampler::<CountMinSketch, SmallRng>::with_count_min_rng(6, 10, 4, 3)
                .unwrap();
        let mut fast_b = KnowledgeFreeSampler::with_count_min(6, 10, 4, 3).unwrap();
        // The default generator IS SmallRng: identical streams.
        assert_eq!(fast_a.run(stream.clone()), fast_b.run(stream.clone()));
        // The hardened generator is a distinct, equally deterministic track.
        let mut hard_a =
            KnowledgeFreeSampler::<CountMinSketch, StdRng>::with_count_min_rng(6, 10, 4, 3)
                .unwrap();
        let mut hard_b =
            KnowledgeFreeSampler::<CountMinSketch, StdRng>::with_count_min_rng(6, 10, 4, 3)
                .unwrap();
        assert_eq!(hard_a.run(stream.clone()), hard_b.run(stream));
    }

    #[test]
    fn ingest_skips_the_output_draw_but_matches_feed_with_sample() {
        // ingest(id); sample() must replay feed(id) exactly: same coins in
        // the same order, so memory, RNG state and output all agree.
        let stream: Vec<NodeId> = (0..1_200u64).map(|i| NodeId::new(i * 31 % 48)).collect();
        let mut fed = KnowledgeFreeSampler::with_count_min(5, 10, 4, 11).unwrap();
        let mut ingested = KnowledgeFreeSampler::with_count_min(5, 10, 4, 11).unwrap();
        for &id in &stream {
            let out = fed.feed(id);
            ingested.ingest(id);
            assert_eq!(ingested.sample(), Some(out));
            assert_eq!(ingested.memory_contents(), fed.memory_contents());
        }
    }

    #[test]
    fn feed_batch_matches_elementwise_feed() {
        let stream: Vec<NodeId> = (0..900u64).map(|i| NodeId::new(i * 17 % 96)).collect();
        let mut single = KnowledgeFreeSampler::with_count_min(8, 12, 5, 21).unwrap();
        let expected: Vec<NodeId> = stream.iter().map(|&id| single.feed(id)).collect();
        let mut batched = KnowledgeFreeSampler::with_count_min(8, 12, 5, 21).unwrap();
        let mut out = Vec::new();
        batched.feed_batch(&stream, &mut out);
        assert_eq!(out, expected);
        assert_eq!(batched.memory_contents(), single.memory_contents());
    }

    #[test]
    fn precomputed_replay_is_bit_equal_to_ingest() {
        // Replaying externally computed (f̂, min_σ) pairs must leave memory
        // and RNG in exactly the state ingest() produces — the property the
        // parallel pipeline in uns-sim is built on.
        let stream: Vec<NodeId> = (0..2_000u64).map(|i| NodeId::new(i * 23 % 128)).collect();
        let mut sequential = KnowledgeFreeSampler::with_count_min(6, 10, 4, 31).unwrap();
        let mut replayed = KnowledgeFreeSampler::with_count_min(6, 10, 4, 31).unwrap();
        // A shadow estimator computes the fused pairs the shards would.
        let mut shadow = sequential.estimator().clone();
        for &id in &stream {
            sequential.ingest(id);
            let (f_hat, min_sigma) = shadow.record_and_estimate(id.as_u64());
            replayed.absorb_precomputed(id, f_hat, min_sigma);
        }
        replayed.install_estimator(shadow);
        assert_eq!(replayed.memory_contents(), sequential.memory_contents());
        // Same RNG state: the next draws coincide.
        for _ in 0..32 {
            assert_eq!(replayed.sample(), sequential.sample());
        }
        // Same estimator state: identical fused reads afterwards.
        for id in 0..128u64 {
            assert_eq!(replayed.estimator().estimate(id), sequential.estimator().estimate(id));
        }
    }

    #[test]
    fn feed_precomputed_matches_feed() {
        let stream: Vec<NodeId> = (0..1_500u64).map(|i| NodeId::new(i * 11 % 64)).collect();
        let mut fed = KnowledgeFreeSampler::with_count_min(5, 8, 3, 13).unwrap();
        let mut replayed = KnowledgeFreeSampler::with_count_min(5, 8, 3, 13).unwrap();
        let mut shadow = fed.estimator().clone();
        for &id in &stream {
            let expected = fed.feed(id);
            let (f_hat, min_sigma) = shadow.record_and_estimate(id.as_u64());
            assert_eq!(replayed.feed_precomputed(id, f_hat, min_sigma), expected);
        }
    }

    #[test]
    fn adaptive_omniscient_uses_exact_counts() {
        let mut sampler = KnowledgeFreeSampler::adaptive_omniscient(3, 5).unwrap();
        for _ in 0..10 {
            sampler.feed(NodeId::new(1));
        }
        sampler.feed(NodeId::new(2));
        assert_eq!(sampler.estimator().frequency(1), 10);
        assert_eq!(sampler.estimator().frequency(2), 1);
        // a_1 = min/f_1 = 1/10; a_2 = 1/1.
        assert!((sampler.insertion_probability_estimate(NodeId::new(1)) - 0.1).abs() < 1e-12);
        assert_eq!(sampler.insertion_probability_estimate(NodeId::new(2)), 1.0);
    }

    #[test]
    fn works_with_count_sketch_estimator() {
        let estimator = CountSketch::with_dimensions(32, 5, 11).unwrap();
        let mut sampler = KnowledgeFreeSampler::new(4, estimator, 11).unwrap();
        for i in 0..500u64 {
            sampler.feed(NodeId::new(i % 20));
        }
        assert_eq!(sampler.memory_contents().len(), 4);
        assert_eq!(sampler.strategy_name(), "knowledge-free");
    }

    #[test]
    fn sample_before_and_after_first_feed() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(2, 4, 2, 1).unwrap();
        assert_eq!(sampler.sample(), None);
        sampler.feed(NodeId::new(9));
        assert_eq!(sampler.sample(), Some(NodeId::new(9)));
        assert_eq!(sampler.capacity(), 2);
    }
}
