//! The knowledge-free one-pass strategy — the paper's Algorithm 3.
//!
//! The knowledge-free strategy makes *no assumption* about the input
//! stream: neither its length, nor the number of distinct identifiers, nor
//! their frequency distribution. It runs the paper's Algorithm 2 (a
//! Count-Min sketch, `uns_sketch::CountMinSketch`) in lock-step with the
//! sampling loop (the paper's `cobegin`): every identifier `j` is first
//! recorded in the sketch, then the insertion probability is computed from
//! sketch state only:
//!
//! ```text
//! a_j = min_σ / f̂_j
//! ```
//!
//! where `f̂_j` is the sketch estimate for `j` and `min_σ` the sampling
//! floor — the minimum over the *touched* counters, maintained
//! incrementally by the estimator's floor-estimate engine
//! (`uns_sketch::min_tracker`; see
//! [`FrequencyEstimator::floor_estimate`] for the exact per-estimator
//! semantics, including the Count-sketch signed-counter caveat). Eviction
//! is uniform over `Γ` (`r_k = 1/c`, line 11) and the output is a uniform
//! resident (line 13).
//!
//! # Hot-path layout
//!
//! The per-element cost is dominated by three things, all addressed here:
//!
//! * the sketch is driven through the **fused**
//!   [`FrequencyEstimator::record_and_estimate`] operation, so each row of
//!   the sketch is hashed once per element (the lock-step `cobegin` needs
//!   both `f̂_j` and `min_σ` anyway — recording and estimating separately
//!   would hash everything twice), and `min_σ` is an O(1) read off the
//!   estimator's floor engine rather than a counter scan;
//! * the sampler's per-element coins (one insertion coin, one output draw)
//!   come from a pluggable RNG `R`, defaulting to **blocked** xoshiro256++
//!   ([`rand::rngs::BlockRng`]`<`[`rand::rngs::SmallRng`]`>`): the
//!   generator pre-draws words in blocks of [`rand::rngs::BLOCK_LEN`] and
//!   every entry point — element-wise `feed`/`ingest` and the batch paths
//!   alike — serves its admission coins, eviction draws and output draws
//!   from that buffer, turning the per-coin generator step into an
//!   amortized block fill. The emitted coin stream is word-for-word the
//!   plain `SmallRng` stream for the same seed (pinned by tests and
//!   proptests), so the block boundary is observable *nowhere*: outputs,
//!   admissions and evictions are identical to a plain-generator run. The
//!   coins only decide admission/eviction among *already-sketch-filtered*
//!   candidates, so a fast non-cryptographic generator is statistically
//!   sufficient; pass [`rand::rngs::StdRng`] (ChaCha12) via
//!   [`KnowledgeFreeSampler::with_count_min_rng`] to reproduce runs made
//!   with the hardened generator;
//! * input-only consumers use [`NodeSampler::ingest`] /
//!   [`NodeSampler::feed_batch`] (see the trait docs for the contract), so
//!   no uniform output sample is computed when nobody reads it; batch
//!   consumers that also want admission accounting use
//!   [`KnowledgeFreeSampler::feed_batch_admitted`] /
//!   [`KnowledgeFreeSampler::ingest_batch_admitted`] (the service layer's
//!   entry points).
//!
//! The strategy is generic over the [`FrequencyEstimator`]: plugging in the
//! exact oracle instead of the sketch yields the *adaptive omniscient*
//! sampler (the paper's Algorithm 1 with `p_j` learned exactly on the fly),
//! and plugging in a Count sketch gives the estimator ablation measured by
//! the benchmark harness.

use crate::error::CoreError;
use crate::memory::SamplingMemory;
use crate::node_id::NodeId;
use crate::sampler::NodeSampler;
use rand::rngs::{BlockRng, SmallRng};
use rand::{Rng, SeedableRng};
use uns_sketch::{
    CountMinSketch, CountSketch, ExactFrequencyOracle, FrequencyEstimator, HashFamilyKind,
};

/// The default coin generator: xoshiro256++ behind a block buffer. Emits
/// exactly the [`SmallRng`] stream for the same seed (the blocking is a
/// cost-profile change, not a behavioural one); its snapshot state is the
/// inner generator plus the pending pre-drawn words — see
/// [`BlockRng::state_parts`].
pub type CoinRng = BlockRng<SmallRng>;

/// The paper's Algorithm 3: knowledge-free Byzantine-tolerant node
/// sampling, generic over the frequency estimator `E` and the coin
/// generator `R`.
///
/// # Example
///
/// ```
/// use uns_core::{KnowledgeFreeSampler, NodeId, NodeSampler};
///
/// # fn main() -> Result<(), uns_core::CoreError> {
/// // The paper's Figure 7 settings: c = 10, k = 10, s = 5.
/// let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 1)?;
/// let out = sampler.feed(NodeId::new(42));
/// assert_eq!(out, NodeId::new(42)); // sole resident so far
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct KnowledgeFreeSampler<E = CountMinSketch, R = CoinRng> {
    memory: SamplingMemory,
    estimator: E,
    rng: R,
}

/// Derives the estimator's hash-family seed from the sampler's stream
/// seed — the single definition shared by every sketch-backed constructor
/// (and relied on by `uns-service` stream reproducibility).
///
/// Public because external parties that rebuild the estimator half of a
/// sampler out-of-band — the parallel pipeline (`uns_sim::ShardedIngestion`
/// builds its shard sketches from an explicit sketch seed) and conformance
/// harnesses comparing those paths against service streams created from a
/// [`StreamConfig`-style](KnowledgeFreeSampler::with_count_min) single seed
/// — must apply the *same* derivation, or their sketches hash differently
/// and bit-equality is unobtainable.
pub fn derive_estimator_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1)
}

impl KnowledgeFreeSampler<CountMinSketch> {
    /// Creates the sampler with memory size `c = capacity` and a Count-Min
    /// sketch of `k = width` columns and `s = depth` rows — the exact
    /// configuration of the paper's experiments.
    ///
    /// The single `seed` deterministically derives both the sketch's hash
    /// functions and the sampler's random coins (drawn from the default
    /// blocked generator [`CoinRng`], whose coin stream is exactly the
    /// plain [`SmallRng`] stream for that seed; use
    /// [`KnowledgeFreeSampler::with_count_min_rng`] to pick the generator).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// sketch dimension errors as [`CoreError::Sketch`].
    pub fn with_count_min(
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::with_count_min_rng(capacity, width, depth, seed)
    }

    /// [`KnowledgeFreeSampler::with_count_min`] with an explicit sketch
    /// hash family. `HashFamilyKind::Mersenne` reproduces it bit for bit;
    /// `HashFamilyKind::MultiplyShift` swaps the sketch's row hashes for
    /// Dietzfelbinger multiply-shift functions (2-approximately universal,
    /// cheaper per element). The seed derivation and the sampler's coin
    /// stream are family-independent.
    ///
    /// # Errors
    ///
    /// As [`KnowledgeFreeSampler::with_count_min`].
    pub fn with_count_min_family(
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
        family: HashFamilyKind,
    ) -> Result<Self, CoreError> {
        let sketch = CountMinSketch::with_dimensions_family(
            width,
            depth,
            derive_estimator_seed(seed),
            family,
        )?;
        Self::new(capacity, sketch, seed)
    }

    /// Creates the sampler sizing the sketch from accuracy targets
    /// (`k = ⌈e/ε⌉`, `s = ⌈ln(1/δ)⌉`), the parametrization of the paper's
    /// Algorithm 2.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// invalid `ε`/`δ` as [`CoreError::Sketch`].
    pub fn with_error_bounds(
        capacity: usize,
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let sketch =
            CountMinSketch::with_error_bounds(epsilon, delta, derive_estimator_seed(seed))?;
        Self::new(capacity, sketch, seed)
    }
}

impl<R: Rng + SeedableRng> KnowledgeFreeSampler<CountMinSketch, R> {
    /// [`KnowledgeFreeSampler::with_count_min`] with an explicit coin
    /// generator, e.g. `StdRng` (ChaCha12) to reproduce traces recorded
    /// with the hardened generator:
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use uns_core::{KnowledgeFreeSampler, NodeSampler, NodeId};
    /// use uns_sketch::CountMinSketch;
    ///
    /// let mut sampler =
    ///     KnowledgeFreeSampler::<CountMinSketch, StdRng>::with_count_min_rng(10, 10, 5, 1)
    ///         .unwrap();
    /// sampler.feed(NodeId::new(3));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// sketch dimension errors as [`CoreError::Sketch`].
    pub fn with_count_min_rng(
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let sketch = CountMinSketch::with_dimensions(width, depth, derive_estimator_seed(seed))?;
        Self::with_estimator_and_rng(capacity, sketch, seed)
    }
}

impl KnowledgeFreeSampler<CountSketch> {
    /// Creates the sampler over a Count sketch of `k = width` buckets and
    /// `s = depth` rows — the estimator-ablation counterpart of
    /// [`KnowledgeFreeSampler::with_count_min`], with the identical
    /// seed-derivation plumbing (one stream seed derives both the packed
    /// bucket/sign hash functions and the sampler coins).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0` and wraps
    /// sketch dimension errors as [`CoreError::Sketch`].
    pub fn with_count_sketch(
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::with_count_sketch_family(capacity, width, depth, seed, HashFamilyKind::Mersenne)
    }

    /// [`KnowledgeFreeSampler::with_count_sketch`] with an explicit sketch
    /// hash family — the Count-sketch counterpart of
    /// [`KnowledgeFreeSampler::with_count_min_family`].
    ///
    /// # Errors
    ///
    /// As [`KnowledgeFreeSampler::with_count_sketch`].
    pub fn with_count_sketch_family(
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
        family: HashFamilyKind,
    ) -> Result<Self, CoreError> {
        let sketch =
            CountSketch::with_dimensions_family(width, depth, derive_estimator_seed(seed), family)?;
        Self::new(capacity, sketch, seed)
    }
}

impl KnowledgeFreeSampler<ExactFrequencyOracle> {
    /// Creates the *adaptive omniscient* sampler: Algorithm 3 driven by
    /// exact frequencies instead of sketched ones, i.e. Algorithm 1 with
    /// `p_j` learned on the fly at full-space cost.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn adaptive_omniscient(capacity: usize, seed: u64) -> Result<Self, CoreError> {
        Self::new(capacity, ExactFrequencyOracle::new(), seed)
    }
}

impl<E: FrequencyEstimator> KnowledgeFreeSampler<E> {
    /// Creates the sampler from an explicit estimator instance, using the
    /// default fast coin generator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: usize, estimator: E, seed: u64) -> Result<Self, CoreError> {
        Self::with_estimator_and_rng(capacity, estimator, seed)
    }
}

impl<E: FrequencyEstimator, R: Rng + SeedableRng> KnowledgeFreeSampler<E, R> {
    /// Creates the sampler from an explicit estimator and coin generator
    /// type — the fully general constructor behind every other one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn with_estimator_and_rng(
        capacity: usize,
        estimator: E,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Ok(Self { memory: SamplingMemory::new(capacity)?, estimator, rng: R::seed_from_u64(seed) })
    }
}

impl<E, R> KnowledgeFreeSampler<E, R> {
    /// Reassembles a sampler from its three state components — the
    /// snapshot/restore seam (`uns-service`). The caller is responsible for
    /// the components belonging together (a memory, estimator and coin
    /// generator captured from the *same* sampler at the *same* point):
    /// given that, the reassembled sampler is bit-equal going forward to
    /// the one the components were captured from.
    pub fn from_parts(memory: SamplingMemory, estimator: E, rng: R) -> Self {
        Self { memory, estimator, rng }
    }

    /// Read access to the sampling memory `Γ` (slot order included) — the
    /// counterpart of [`KnowledgeFreeSampler::estimator`] for snapshots.
    pub fn memory(&self) -> &SamplingMemory {
        &self.memory
    }

    /// Read access to the coin generator, e.g. to capture its state for a
    /// snapshot. For the default blocked generator the observable state is
    /// the inner xoshiro256++ state **plus** the pending pre-drawn words
    /// ([`BlockRng::state_parts`]) — both halves must be captured, or
    /// restored coins would skip ahead.
    pub fn rng(&self) -> &R {
        &self.rng
    }
}

impl<E: FrequencyEstimator, R: Rng> KnowledgeFreeSampler<E, R> {
    /// Read access to the underlying frequency estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// The insertion probability `a_j = min_σ/f̂_j` the sampler would use
    /// for `id` *right now* (without recording anything).
    ///
    /// Returns 1 when the estimator has no information yet (`f̂_j = 0`).
    pub fn insertion_probability_estimate(&self, id: NodeId) -> f64 {
        Self::admission_probability(
            self.estimator.estimate(id.as_u64()),
            self.estimator.floor_estimate(),
        )
    }

    /// The admission rule `a_j = min(min_σ/f̂_j, 1)`, with `f̂_j = 0`
    /// treated as "no information ⇒ admit" — the single definition used by
    /// both the public probe above and the feed path.
    fn admission_probability(f_hat: u64, min_sigma: u64) -> f64 {
        if f_hat == 0 {
            return 1.0;
        }
        (min_sigma as f64 / f_hat as f64).min(1.0)
    }

    /// The input half of [`NodeSampler::feed`]: record in the sketch, then
    /// apply the admission/eviction rule. No output draw.
    #[inline]
    fn absorb(&mut self, id: NodeId) {
        self.ingest_admitted(id);
    }

    /// [`NodeSampler::ingest`] plus an admission report: reads one
    /// identifier (estimator recorded, admission/eviction rule applied, no
    /// output draw) and returns `true` if `id` entered `Γ` at this step —
    /// the seam the service layer (`uns-service`) uses to maintain its
    /// admission counters without a second pass over the memory.
    ///
    /// State evolution (memory, estimator, coin order) is identical to
    /// [`NodeSampler::ingest`]; only the admission outcome is surfaced.
    #[inline]
    pub fn ingest_admitted(&mut self, id: NodeId) -> bool {
        // cobegin (Algorithm 3, lines 1–3): the estimator reads the element
        // first, so f̂_j accounts for this occurrence. The fused operation
        // also hands back min_σ, saving the second hashing pass.
        let (f_hat, min_sigma) = self.estimator.record_and_estimate(id.as_u64());
        self.absorb_precomputed(id, f_hat, min_sigma)
    }

    /// The memory-and-coins half of [`NodeSampler::ingest`], taking the
    /// fused `(f̂_j, min_σ)` pair from the caller instead of recording `id`
    /// in this sampler's own estimator. Returns `true` if `id` entered `Γ`.
    ///
    /// This is the replay half of a **parallel sampling pipeline**
    /// (`uns_sim::ShardedIngestion`): shard workers compute, for every
    /// stream element, exactly the `(f̂_j, min_σ)` the sequential sampler
    /// would have seen at that position (Count-Min prefix states are
    /// reconstructible by merging earlier chunks), and a single replay
    /// thread calls this method in stream order. Because the method
    /// consumes random coins in exactly the order `ingest` does — one
    /// admission coin per full-memory non-resident element, one eviction
    /// draw per admission — the resulting memory **and** RNG state are
    /// bit-equal to sequential ingestion.
    ///
    /// The estimator is deliberately *not* touched: a caller that replays
    /// precomputed admissions must install the matching final estimator
    /// state afterwards via [`KnowledgeFreeSampler::install_estimator`],
    /// or subsequent feeds will estimate from a stale (typically empty)
    /// sketch.
    #[inline]
    pub fn absorb_precomputed(&mut self, id: NodeId, f_hat: u64, min_sigma: u64) -> bool {
        if !self.memory.is_full() {
            self.memory.insert(id) // no-op when already resident
        } else if !self.memory.contains(id) {
            // Branchless admission. The decision "coin < min(min_σ/f̂, 1)
            // (admit on f̂ = 0)" is evaluated as a non-short-circuiting OR
            // of two comparisons so the a_j = 1 fast path — every element
            // whose estimate has not outgrown the floor, i.e. the bulk of
            // honest traffic — costs no data-dependent branch. The OR is
            // decision-identical to the clamped form: f̂ ≤ min_σ covers
            // exactly the cases where the (f64-rounded) quotient is ≥ 1 and
            // the clamp fired (including f̂ = 0, where the quotient is NaN
            // or +∞), and otherwise the same rounded quotient is compared.
            // Exactly one admission coin is drawn either way — the coin
            // order replay paths depend on (see the NodeSampler docs).
            let coin = self.rng.gen::<f64>();
            let admitted = (f_hat <= min_sigma) | (coin < min_sigma as f64 / f_hat as f64);
            if admitted {
                // r_k = 1/c: uniform eviction (Algorithm 3, line 11). The
                // membership probe above already established `id` is
                // absent, so the duplicate-checking public entry point is
                // skipped (identical coin usage, one probe saved).
                self.memory.replace_uniform_absent(&mut self.rng, id);
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// [`KnowledgeFreeSampler::absorb_precomputed`] plus the uniform output
    /// draw — the precomputed counterpart of [`NodeSampler::feed`], with
    /// the identical coin order.
    ///
    /// # Panics
    ///
    /// Panics if called before anything was absorbed (empty `Γ`), exactly
    /// like `feed` never can be observed empty after its own absorb.
    pub fn feed_precomputed(&mut self, id: NodeId, f_hat: u64, min_sigma: u64) -> NodeId {
        self.absorb_precomputed(id, f_hat, min_sigma);
        self.memory
            .sample_uniform(&mut self.rng)
            .expect("memory is non-empty after absorbing at least one identifier")
    }

    /// Replaces the sampler's estimator, e.g. with the merged sketch of a
    /// sharded ingestion after a precomputed replay. The memory `Γ` and the
    /// coin generator are left untouched.
    pub fn install_estimator(&mut self, estimator: E) {
        self.estimator = estimator;
    }

    /// [`NodeSampler::feed_batch`] plus an admission count: one monomorphic
    /// pass over `ids` doing the full per-element feed step (estimator
    /// record, admission/eviction, one output draw appended to `out`),
    /// returning how many elements entered `Γ`.
    ///
    /// Coin-for-coin identical to element-wise [`NodeSampler::feed`]; under
    /// the default [`CoinRng`] the admission and output coins of the whole
    /// batch are served from pre-drawn blocks, which is where the service
    /// path's per-element generator overhead goes. This is `uns-service`'s
    /// FeedBatch entry point.
    pub fn feed_batch_admitted(&mut self, ids: &[NodeId], out: &mut Vec<NodeId>) -> u64 {
        out.reserve(ids.len());
        let mut admitted = 0u64;
        for &id in ids {
            admitted += u64::from(self.ingest_admitted(id));
            out.push(
                self.memory
                    .sample_uniform(&mut self.rng)
                    .expect("memory is non-empty after feeding at least one identifier"),
            );
        }
        admitted
    }

    /// [`NodeSampler::ingest`] over a batch, returning how many elements
    /// entered `Γ` — the input-only counterpart of
    /// [`KnowledgeFreeSampler::feed_batch_admitted`] (no output draws).
    pub fn ingest_batch_admitted(&mut self, ids: &[NodeId]) -> u64 {
        let mut admitted = 0u64;
        for &id in ids {
            admitted += u64::from(self.ingest_admitted(id));
        }
        admitted
    }

    /// [`KnowledgeFreeSampler::absorb_precomputed`] over a whole batch of
    /// `(id, f̂_j, min_σ)` candidates, returning how many entered `Γ` — the
    /// monomorphic replay loop of the parallel pipeline's candidate queue
    /// (`uns_sim::ShardedIngestion`). Identical coin order to calling
    /// `absorb_precomputed` per element.
    pub fn absorb_precomputed_batch(&mut self, candidates: &[(NodeId, u64, u64)]) -> u64 {
        let mut admitted = 0u64;
        for &(id, f_hat, min_sigma) in candidates {
            admitted += u64::from(self.absorb_precomputed(id, f_hat, min_sigma));
        }
        admitted
    }
}

impl<E: FrequencyEstimator, R: Rng> NodeSampler for KnowledgeFreeSampler<E, R> {
    fn feed(&mut self, id: NodeId) -> NodeId {
        self.absorb(id);
        self.memory
            .sample_uniform(&mut self.rng)
            .expect("memory is non-empty after feeding at least one identifier")
    }

    /// Input-only path: identical state evolution to [`NodeSampler::feed`],
    /// minus the output draw (see the trait-level contract).
    fn ingest(&mut self, id: NodeId) {
        self.absorb(id);
    }

    fn feed_batch(&mut self, ids: &[NodeId], out: &mut Vec<NodeId>) {
        let _ = self.feed_batch_admitted(ids, out);
    }

    fn sample(&mut self) -> Option<NodeId> {
        self.memory.sample_uniform(&mut self.rng)
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.memory.iter().copied().collect()
    }

    fn capacity(&self) -> usize {
        self.memory.capacity()
    }

    fn strategy_name(&self) -> &'static str {
        "knowledge-free"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use std::collections::HashSet;
    use uns_sketch::CountSketch;

    #[test]
    fn constructor_validates_capacity_and_sketch() {
        assert_eq!(
            KnowledgeFreeSampler::with_count_min(0, 10, 5, 0).unwrap_err(),
            CoreError::ZeroCapacity
        );
        assert!(matches!(
            KnowledgeFreeSampler::with_count_min(5, 0, 5, 0),
            Err(CoreError::Sketch(_))
        ));
        assert!(matches!(
            KnowledgeFreeSampler::with_error_bounds(5, 0.0, 0.1, 0),
            Err(CoreError::Sketch(_))
        ));
        assert!(KnowledgeFreeSampler::with_error_bounds(5, 0.3, 0.01, 0).is_ok());
        assert!(KnowledgeFreeSampler::adaptive_omniscient(5, 0).is_ok());
    }

    #[test]
    fn insertion_probability_reflects_sketch_state() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(2, 32, 4, 3).unwrap();
        // No information yet.
        assert_eq!(sampler.insertion_probability_estimate(NodeId::new(5)), 1.0);
        // Flood one id among occasional rare ids: the flooded id's a_j must
        // collapse while rare ids keep a_j = 1.
        for i in 0..2_000u64 {
            sampler.feed(NodeId::new(5));
            if i % 50 == 0 {
                sampler.feed(NodeId::new(100 + i));
            }
        }
        let a_flooded = sampler.insertion_probability_estimate(NodeId::new(5));
        assert!(a_flooded < 0.05, "flooded id keeps a_j = {a_flooded}");
        let a_rare = sampler.insertion_probability_estimate(NodeId::new(2_100));
        assert!(a_rare > 0.5, "rare id got a_j = {a_rare}");
    }

    #[test]
    fn output_is_always_a_memory_resident() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(4, 8, 3, 9).unwrap();
        for i in 0..2_000u64 {
            let out = sampler.feed(NodeId::new(i % 32));
            let residents: HashSet<NodeId> = sampler.memory_contents().into_iter().collect();
            assert!(residents.contains(&out));
            assert!(residents.len() <= 4);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let stream: Vec<NodeId> = (0..800u64).map(|i| NodeId::new(i * 13 % 64)).collect();
        let mut a = KnowledgeFreeSampler::with_count_min(6, 12, 4, 77).unwrap();
        let mut b = KnowledgeFreeSampler::with_count_min(6, 12, 4, 77).unwrap();
        assert_eq!(a.run(stream.clone()), b.run(stream.clone()));
        let mut c = KnowledgeFreeSampler::with_count_min(6, 12, 4, 78).unwrap();
        // Different seed: overwhelmingly likely to diverge somewhere.
        assert_ne!(a.run(stream.clone()), c.run(stream));
    }

    #[test]
    fn explicit_rng_choice_is_deterministic_per_generator() {
        let stream: Vec<NodeId> = (0..500u64).map(|i| NodeId::new(i * 7 % 40)).collect();
        let mut fast_a =
            KnowledgeFreeSampler::<CountMinSketch, SmallRng>::with_count_min_rng(6, 10, 4, 3)
                .unwrap();
        let mut fast_b = KnowledgeFreeSampler::with_count_min(6, 10, 4, 3).unwrap();
        // The default blocked generator emits the SmallRng coin stream:
        // identical outputs, block boundary observable nowhere.
        assert_eq!(fast_a.run(stream.clone()), fast_b.run(stream.clone()));
        // The hardened generator is a distinct, equally deterministic track.
        let mut hard_a =
            KnowledgeFreeSampler::<CountMinSketch, StdRng>::with_count_min_rng(6, 10, 4, 3)
                .unwrap();
        let mut hard_b =
            KnowledgeFreeSampler::<CountMinSketch, StdRng>::with_count_min_rng(6, 10, 4, 3)
                .unwrap();
        assert_eq!(hard_a.run(stream.clone()), hard_b.run(stream));
    }

    #[test]
    fn ingest_skips_the_output_draw_but_matches_feed_with_sample() {
        // ingest(id); sample() must replay feed(id) exactly: same coins in
        // the same order, so memory, RNG state and output all agree.
        let stream: Vec<NodeId> = (0..1_200u64).map(|i| NodeId::new(i * 31 % 48)).collect();
        let mut fed = KnowledgeFreeSampler::with_count_min(5, 10, 4, 11).unwrap();
        let mut ingested = KnowledgeFreeSampler::with_count_min(5, 10, 4, 11).unwrap();
        for &id in &stream {
            let out = fed.feed(id);
            ingested.ingest(id);
            assert_eq!(ingested.sample(), Some(out));
            assert_eq!(ingested.memory_contents(), fed.memory_contents());
        }
    }

    #[test]
    fn branchless_admission_matches_clamped_reference() {
        // The non-short-circuit OR in absorb_precomputed must decide
        // exactly like the clamped textbook form coin < min(min_σ/f̂, 1)
        // with f̂ = 0 treated as admit — for every (f̂, min_σ, coin),
        // including the rounding edge where min_σ/f̂ rounds up to 1.0.
        let reference = |f_hat: u64, min_sigma: u64, coin: f64| {
            if f_hat == 0 {
                true
            } else {
                coin < (min_sigma as f64 / f_hat as f64).min(1.0)
            }
        };
        let branchless = |f_hat: u64, min_sigma: u64, coin: f64| {
            (f_hat <= min_sigma) | (coin < min_sigma as f64 / f_hat as f64)
        };
        let mut rng = SmallRng::seed_from_u64(19);
        let edge = [0u64, 1, 2, 3, u64::MAX - 1, u64::MAX];
        let mut cases: Vec<(u64, u64)> = edge
            .iter()
            .flat_map(|&f| edge.iter().map(move |&m| (f, m)))
            .chain([(u64::MAX, u64::MAX - 1), ((1 << 60) + 1, 1 << 60)])
            .collect();
        for _ in 0..5_000 {
            let f = rng.gen_range(0..1_000u64);
            let m = rng.gen_range(0..1_000u64);
            cases.push((f, m));
            // Near-1 quotients: f and m within one of each other, huge.
            let big = rng.gen_range(u64::MAX / 2..u64::MAX - 1);
            cases.push((big + 1, big));
        }
        for (f, m) in cases {
            for coin in [0.0, 0.5, 1.0 - f64::EPSILON / 2.0, f64::from_bits((1.0f64).to_bits() - 1)]
            {
                assert_eq!(
                    branchless(f, m, coin),
                    reference(f, m, coin),
                    "divergence at f̂={f}, min_σ={m}, coin={coin}"
                );
            }
        }
    }

    #[test]
    fn ingest_admitted_matches_ingest_and_reports_truthfully() {
        let stream: Vec<NodeId> = (0..2_500u64).map(|i| NodeId::new(i * 37 % 96)).collect();
        let mut plain = KnowledgeFreeSampler::with_count_min(5, 10, 4, 23).unwrap();
        let mut reporting = KnowledgeFreeSampler::with_count_min(5, 10, 4, 23).unwrap();
        let mut admissions = 0u64;
        for &id in &stream {
            plain.ingest(id);
            let before = reporting.memory_contents();
            let admitted = reporting.ingest_admitted(id);
            let after = reporting.memory_contents();
            assert_eq!(admitted, before != after, "report disagrees with Γ change");
            admissions += u64::from(admitted);
            assert_eq!(after, plain.memory_contents());
        }
        assert!(admissions >= 5, "at least the free-slot fills are admissions");
        // Coin streams stayed aligned: the next draws coincide.
        for _ in 0..32 {
            assert_eq!(plain.sample(), reporting.sample());
        }
    }

    #[test]
    fn from_parts_reassembles_a_bit_equal_sampler() {
        let mut original = KnowledgeFreeSampler::with_count_min(6, 10, 4, 51).unwrap();
        for i in 0..5_000u64 {
            original.feed(NodeId::new(i * 29 % 80));
        }
        // Capture the three components the way a snapshot would.
        let memory = {
            let mut rebuilt = crate::SamplingMemory::new(original.memory().capacity()).unwrap();
            for &id in original.memory().iter() {
                rebuilt.insert(id);
            }
            rebuilt
        };
        let estimator = original.estimator().clone();
        // The blocked generator's state is BOTH halves: inner + pending.
        let (inner, pending) = original.rng().state_parts();
        let rng = CoinRng::from_parts(SmallRng::from_state(inner.state()), pending);
        let mut restored = KnowledgeFreeSampler::from_parts(memory, estimator, rng);
        assert_eq!(restored.memory_contents(), original.memory_contents());
        // Bit-equal going forward under further traffic.
        for i in 0..3_000u64 {
            let id = NodeId::new(i * 13 % 200);
            assert_eq!(restored.feed(id), original.feed(id), "diverged at step {i}");
        }
    }

    #[test]
    fn blocked_coin_batches_match_plain_generator_elementwise_feeds() {
        // The blocked-vs-sequential pin at sampler level: the default
        // (BlockRng-backed) sampler driven through feed_batch_admitted must
        // match an explicit plain-SmallRng sampler driven element-wise —
        // outputs, admissions, memory, estimator cells, and the coin stream
        // position (checked by further draws agreeing).
        let stream: Vec<NodeId> = (0..5_000u64).map(|i| NodeId::new(i * 29 % 160)).collect();
        let mut blocked = KnowledgeFreeSampler::with_count_min(7, 10, 5, 61).unwrap();
        let mut plain =
            KnowledgeFreeSampler::<CountMinSketch, SmallRng>::with_count_min_rng(7, 10, 5, 61)
                .unwrap();
        let mut blocked_out = Vec::new();
        let mut blocked_admitted = 0u64;
        // Ragged batch sizes so batch ends land at arbitrary positions
        // relative to the 64-word coin blocks.
        for batch in stream.chunks(113) {
            blocked_admitted += blocked.feed_batch_admitted(batch, &mut blocked_out);
        }
        let mut plain_out = Vec::new();
        let mut plain_admitted = 0u64;
        for &id in &stream {
            let before = plain.memory_contents();
            plain_out.push(plain.feed(id));
            plain_admitted += u64::from(before != plain.memory_contents());
        }
        assert_eq!(blocked_out, plain_out);
        assert_eq!(blocked_admitted, plain_admitted);
        assert_eq!(blocked.memory_contents(), plain.memory_contents());
        for id in 0..160u64 {
            assert_eq!(blocked.estimator().estimate(id), plain.estimator().estimate(id));
        }
        // Coin streams aligned across the boundary: further draws coincide.
        for _ in 0..256 {
            assert_eq!(blocked.sample(), plain.sample());
        }
    }

    #[test]
    fn ingest_batch_admitted_matches_elementwise_ingest() {
        let stream: Vec<NodeId> = (0..3_000u64).map(|i| NodeId::new(i * 41 % 120)).collect();
        let mut batched = KnowledgeFreeSampler::with_count_min(5, 10, 4, 83).unwrap();
        let mut elementwise = KnowledgeFreeSampler::with_count_min(5, 10, 4, 83).unwrap();
        let mut batched_admitted = 0u64;
        for batch in stream.chunks(97) {
            batched_admitted += batched.ingest_batch_admitted(batch);
        }
        let mut elementwise_admitted = 0u64;
        for &id in &stream {
            elementwise_admitted += u64::from(elementwise.ingest_admitted(id));
        }
        assert_eq!(batched_admitted, elementwise_admitted);
        assert_eq!(batched.memory_contents(), elementwise.memory_contents());
        for _ in 0..64 {
            assert_eq!(batched.sample(), elementwise.sample());
        }
    }

    #[test]
    fn absorb_precomputed_batch_matches_elementwise_absorb() {
        let stream: Vec<NodeId> = (0..2_000u64).map(|i| NodeId::new(i * 23 % 128)).collect();
        let mut shadow = CountMinSketch::with_dimensions(10, 4, 5).unwrap();
        let candidates: Vec<(NodeId, u64, u64)> = stream
            .iter()
            .map(|&id| {
                let (f_hat, min_sigma) = shadow.record_and_estimate(id.as_u64());
                (id, f_hat, min_sigma)
            })
            .collect();
        let mut batched = KnowledgeFreeSampler::with_count_min(6, 10, 4, 37).unwrap();
        let mut elementwise = KnowledgeFreeSampler::with_count_min(6, 10, 4, 37).unwrap();
        let mut batched_admitted = 0u64;
        for chunk in candidates.chunks(127) {
            batched_admitted += batched.absorb_precomputed_batch(chunk);
        }
        let mut elementwise_admitted = 0u64;
        for &(id, f_hat, min_sigma) in &candidates {
            elementwise_admitted += u64::from(elementwise.absorb_precomputed(id, f_hat, min_sigma));
        }
        assert_eq!(batched_admitted, elementwise_admitted);
        assert_eq!(batched.memory_contents(), elementwise.memory_contents());
        for _ in 0..64 {
            assert_eq!(batched.sample(), elementwise.sample());
        }
    }

    #[test]
    fn feed_batch_matches_elementwise_feed() {
        let stream: Vec<NodeId> = (0..900u64).map(|i| NodeId::new(i * 17 % 96)).collect();
        let mut single = KnowledgeFreeSampler::with_count_min(8, 12, 5, 21).unwrap();
        let expected: Vec<NodeId> = stream.iter().map(|&id| single.feed(id)).collect();
        let mut batched = KnowledgeFreeSampler::with_count_min(8, 12, 5, 21).unwrap();
        let mut out = Vec::new();
        batched.feed_batch(&stream, &mut out);
        assert_eq!(out, expected);
        assert_eq!(batched.memory_contents(), single.memory_contents());
    }

    #[test]
    fn precomputed_replay_is_bit_equal_to_ingest() {
        // Replaying externally computed (f̂, min_σ) pairs must leave memory
        // and RNG in exactly the state ingest() produces — the property the
        // parallel pipeline in uns-sim is built on.
        let stream: Vec<NodeId> = (0..2_000u64).map(|i| NodeId::new(i * 23 % 128)).collect();
        let mut sequential = KnowledgeFreeSampler::with_count_min(6, 10, 4, 31).unwrap();
        let mut replayed = KnowledgeFreeSampler::with_count_min(6, 10, 4, 31).unwrap();
        // A shadow estimator computes the fused pairs the shards would.
        let mut shadow = sequential.estimator().clone();
        for &id in &stream {
            sequential.ingest(id);
            let (f_hat, min_sigma) = shadow.record_and_estimate(id.as_u64());
            replayed.absorb_precomputed(id, f_hat, min_sigma);
        }
        replayed.install_estimator(shadow);
        assert_eq!(replayed.memory_contents(), sequential.memory_contents());
        // Same RNG state: the next draws coincide.
        for _ in 0..32 {
            assert_eq!(replayed.sample(), sequential.sample());
        }
        // Same estimator state: identical fused reads afterwards.
        for id in 0..128u64 {
            assert_eq!(replayed.estimator().estimate(id), sequential.estimator().estimate(id));
        }
    }

    #[test]
    fn feed_precomputed_matches_feed() {
        let stream: Vec<NodeId> = (0..1_500u64).map(|i| NodeId::new(i * 11 % 64)).collect();
        let mut fed = KnowledgeFreeSampler::with_count_min(5, 8, 3, 13).unwrap();
        let mut replayed = KnowledgeFreeSampler::with_count_min(5, 8, 3, 13).unwrap();
        let mut shadow = fed.estimator().clone();
        for &id in &stream {
            let expected = fed.feed(id);
            let (f_hat, min_sigma) = shadow.record_and_estimate(id.as_u64());
            assert_eq!(replayed.feed_precomputed(id, f_hat, min_sigma), expected);
        }
    }

    #[test]
    fn adaptive_omniscient_uses_exact_counts() {
        let mut sampler = KnowledgeFreeSampler::adaptive_omniscient(3, 5).unwrap();
        for _ in 0..10 {
            sampler.feed(NodeId::new(1));
        }
        sampler.feed(NodeId::new(2));
        assert_eq!(sampler.estimator().frequency(1), 10);
        assert_eq!(sampler.estimator().frequency(2), 1);
        // a_1 = min/f_1 = 1/10; a_2 = 1/1.
        assert!((sampler.insertion_probability_estimate(NodeId::new(1)) - 0.1).abs() < 1e-12);
        assert_eq!(sampler.insertion_probability_estimate(NodeId::new(2)), 1.0);
    }

    #[test]
    fn works_with_count_sketch_estimator() {
        let estimator = CountSketch::with_dimensions(32, 5, 11).unwrap();
        let mut sampler = KnowledgeFreeSampler::new(4, estimator, 11).unwrap();
        for i in 0..500u64 {
            sampler.feed(NodeId::new(i % 20));
        }
        assert_eq!(sampler.memory_contents().len(), 4);
        assert_eq!(sampler.strategy_name(), "knowledge-free");
    }

    #[test]
    fn with_count_sketch_mirrors_count_min_seed_plumbing() {
        assert_eq!(
            KnowledgeFreeSampler::with_count_sketch(0, 10, 5, 1).unwrap_err(),
            CoreError::ZeroCapacity
        );
        assert!(matches!(
            KnowledgeFreeSampler::with_count_sketch(5, 0, 5, 1),
            Err(CoreError::Sketch(_))
        ));
        // One stream seed derives the sketch hashes exactly as the
        // Count-Min constructor would, so runs are reproducible from
        // (c, k, s, seed) alone — for both estimators identically.
        let mut a = KnowledgeFreeSampler::with_count_sketch(6, 16, 5, 42).unwrap();
        let mut b = KnowledgeFreeSampler::with_count_sketch(6, 16, 5, 42).unwrap();
        let cm = KnowledgeFreeSampler::with_count_min(6, 16, 5, 42).unwrap();
        assert_eq!(a.estimator().seed(), cm.estimator().seed());
        let stream: Vec<NodeId> = (0..600u64).map(|i| NodeId::new(i * 7 % 48)).collect();
        assert_eq!(a.run(stream.clone()), b.run(stream));
    }

    #[test]
    fn derive_estimator_seed_is_the_constructors_derivation() {
        // External estimator rebuilders (the parallel pipeline, the
        // conformance harness) must land on exactly the sketch the
        // single-seed constructors build.
        for seed in [0u64, 1, 42, u64::MAX] {
            let sampler = KnowledgeFreeSampler::with_count_min(4, 8, 3, seed).unwrap();
            let external =
                CountMinSketch::with_dimensions(8, 3, derive_estimator_seed(seed)).unwrap();
            assert_eq!(sampler.estimator().seed(), external.seed());
            let cs = KnowledgeFreeSampler::with_count_sketch(4, 8, 3, seed).unwrap();
            assert_eq!(cs.estimator().seed(), derive_estimator_seed(seed));
        }
    }

    #[test]
    fn family_constructors_default_to_mersenne_and_stay_deterministic() {
        let stream: Vec<NodeId> = (0..800u64).map(|i| NodeId::new(i * 19 % 72)).collect();
        // Mersenne family constructor ≡ plain constructor, bit for bit.
        let mut plain = KnowledgeFreeSampler::with_count_min(6, 10, 4, 9).unwrap();
        let mut mersenne =
            KnowledgeFreeSampler::with_count_min_family(6, 10, 4, 9, HashFamilyKind::Mersenne)
                .unwrap();
        assert_eq!(plain.run(stream.clone()), mersenne.run(stream.clone()));
        // Multiply-shift is a distinct, equally deterministic track with
        // the same seed derivation.
        let mut ms_a =
            KnowledgeFreeSampler::with_count_min_family(6, 10, 4, 9, HashFamilyKind::MultiplyShift)
                .unwrap();
        let mut ms_b =
            KnowledgeFreeSampler::with_count_min_family(6, 10, 4, 9, HashFamilyKind::MultiplyShift)
                .unwrap();
        assert_eq!(ms_a.estimator().family(), HashFamilyKind::MultiplyShift);
        assert_eq!(ms_a.estimator().seed(), derive_estimator_seed(9));
        assert_eq!(ms_a.run(stream.clone()), ms_b.run(stream.clone()));
        // Same plumbing for the Count-sketch ablation.
        let mut cs_plain = KnowledgeFreeSampler::with_count_sketch(6, 16, 5, 9).unwrap();
        let mut cs_mersenne =
            KnowledgeFreeSampler::with_count_sketch_family(6, 16, 5, 9, HashFamilyKind::Mersenne)
                .unwrap();
        assert_eq!(cs_plain.run(stream.clone()), cs_mersenne.run(stream.clone()));
        let cs_ms = KnowledgeFreeSampler::with_count_sketch_family(
            6,
            16,
            5,
            9,
            HashFamilyKind::MultiplyShift,
        )
        .unwrap();
        assert_eq!(cs_ms.estimator().family(), HashFamilyKind::MultiplyShift);
    }

    #[test]
    fn sample_before_and_after_first_feed() {
        let mut sampler = KnowledgeFreeSampler::with_count_min(2, 4, 2, 1).unwrap();
        assert_eq!(sampler.sample(), None);
        sampler.feed(NodeId::new(9));
        assert_eq!(sampler.sample(), Some(NodeId::new(9)));
        assert_eq!(sampler.capacity(), 2);
    }
}
