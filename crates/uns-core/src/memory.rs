//! The sampling memory `Γ` — a fixed-capacity set of node identifiers with
//! O(1) membership, insertion, uniform eviction and uniform sampling.
//!
//! Both strategies of the paper maintain a set `Γ` of at most `c` node
//! identifiers (`c ≪ n`). On every stream element the strategy may replace
//! a uniformly chosen resident, and always outputs a uniformly chosen
//! resident. This structure backs both operations with a slot vector; the
//! membership probe is a linear slot scan for the paper-scale capacities
//! (`c ≤ 32`, where scanning a few cache lines beats any hash) and a
//! hashed position index above that.

use crate::node_id::NodeId;
use rand::Rng;
use uns_sketch::fx::FxHashMap;

/// Fixed-capacity set of node identifiers with O(1) uniform draws.
///
/// `Γ` has *set semantics*: inserting an identifier already present is a
/// no-op, matching `Γ ← Γ ∪ {j}` in Algorithms 1 and 3, and matching the
/// Markov-chain state space `S = {A ⊆ N : |A| = c}` of the analysis.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use uns_core::{NodeId, SamplingMemory};
///
/// let mut gamma = SamplingMemory::new(2).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(gamma.insert(NodeId::new(7)));
/// assert!(!gamma.insert(NodeId::new(7))); // set semantics
/// assert!(gamma.insert(NodeId::new(9)));
/// assert!(gamma.is_full());
/// // Replace a uniformly chosen resident with a newcomer.
/// let evicted = gamma.replace_uniform(&mut rng, NodeId::new(11)).unwrap();
/// assert!(evicted == NodeId::new(7) || evicted == NodeId::new(9));
/// assert!(gamma.contains(NodeId::new(11)));
/// ```
#[derive(Clone, Debug)]
pub struct SamplingMemory {
    capacity: usize,
    slots: Vec<NodeId>,
    /// Fx-hashed position index for memories above
    /// [`SamplingMemory::SCAN_CAPACITY`]; `None` below it. A linear scan
    /// over ≤ 32 slot words beats any hash probe (the paper's `c` is tens
    /// of identifiers, so the common case pays neither hashing nor the
    /// index maintenance every eviction used to cost), while large
    /// memories keep the O(1) probe. Which mode is in use is decided once
    /// by the capacity and is invisible in behaviour: membership answers
    /// and coin consumption are identical.
    positions: Option<FxHashMap<NodeId, usize>>,
}

impl SamplingMemory {
    /// Largest capacity served by linear-scan membership instead of the
    /// hashed position index.
    const SCAN_CAPACITY: usize = 32;

    /// Creates an empty memory with room for `capacity` identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, crate::CoreError> {
        if capacity == 0 {
            return Err(crate::CoreError::ZeroCapacity);
        }
        let positions = (capacity > Self::SCAN_CAPACITY)
            .then(|| FxHashMap::with_capacity_and_hasher(capacity, Default::default()));
        Ok(Self { capacity, slots: Vec::with_capacity(capacity), positions })
    }

    /// Maximum number of identifiers (`c`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of identifiers (`|Γ|`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when `Γ` holds no identifier.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `true` when `|Γ| = c`.
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.capacity
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        match &self.positions {
            Some(positions) => positions.contains_key(&id),
            // Branchless accumulation instead of a short-circuiting
            // `contains`: over ≤ 32 slots the compiler turns this into a
            // handful of SIMD compares with no data-dependent branches,
            // which is faster than early exit even when the probe would
            // hit the first slot.
            None => self.slots.iter().fold(false, |hit, &slot| hit | (slot == id)),
        }
    }

    /// Inserts `id` if the memory is not full and `id` is absent; returns
    /// whether the set changed.
    ///
    /// Consumes **no** random coins — part of the coin-order contract that
    /// makes sampler histories replayable (see the [`crate::NodeSampler`]
    /// trait docs).
    ///
    /// # Panics
    ///
    /// Panics if called on a full memory with an absent identifier — the
    /// strategies only insert via [`SamplingMemory::replace_uniform`] once
    /// `Γ` is full, so this indicates a logic error.
    pub fn insert(&mut self, id: NodeId) -> bool {
        if self.contains(id) {
            return false;
        }
        assert!(!self.is_full(), "insert on full sampling memory; use replace_uniform instead");
        if let Some(positions) = &mut self.positions {
            positions.insert(id, self.slots.len());
        }
        self.slots.push(id);
        true
    }

    /// Evicts a uniformly chosen resident and inserts `id` in its place
    /// (`Γ ← (Γ \ {k}) ∪ {j}` with `k` drawn uniformly — the paper's
    /// removal rule with equal weights `r`). Returns the evicted
    /// identifier, or `None` (no change) if `id` is already present or the
    /// memory is empty.
    ///
    /// Consumes exactly **one** `gen_range` draw when it evicts and
    /// **none** on the early no-change returns. Replay paths
    /// (`KnowledgeFreeSampler::absorb_precomputed`) depend on this exact
    /// coin count to reproduce sequential RNG states bit for bit.
    pub fn replace_uniform<R: Rng + ?Sized>(&mut self, rng: &mut R, id: NodeId) -> Option<NodeId> {
        if self.slots.is_empty() || self.contains(id) {
            return None;
        }
        let victim_slot = rng.gen_range(0..self.slots.len());
        let evicted = self.slots[victim_slot];
        self.slots[victim_slot] = id;
        if let Some(positions) = &mut self.positions {
            positions.remove(&evicted);
            positions.insert(id, victim_slot);
        }
        Some(evicted)
    }

    /// [`SamplingMemory::replace_uniform`] for a caller that has *already*
    /// established `id` is absent and the memory non-empty (the sampler's
    /// admission path, which just probed membership): skips the duplicate
    /// probe, consumes exactly the same single `gen_range` draw, and
    /// returns the evicted resident.
    #[inline]
    pub(crate) fn replace_uniform_absent<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        id: NodeId,
    ) -> NodeId {
        debug_assert!(!self.slots.is_empty() && !self.contains(id));
        let victim_slot = rng.gen_range(0..self.slots.len());
        let evicted = self.slots[victim_slot];
        self.slots[victim_slot] = id;
        if let Some(positions) = &mut self.positions {
            positions.remove(&evicted);
            positions.insert(id, victim_slot);
        }
        evicted
    }

    /// Evicts a resident chosen with probability proportional to `weight`
    /// (the paper's general rule `r_k / Σ_{ℓ∈Γ} r_ℓ`) and inserts `id`.
    /// Returns the evicted identifier, or `None` if `id` is already present,
    /// the memory is empty, or all weights are zero.
    pub fn replace_weighted<R, W>(&mut self, rng: &mut R, id: NodeId, weight: W) -> Option<NodeId>
    where
        R: Rng + ?Sized,
        W: Fn(NodeId) -> f64,
    {
        if self.slots.is_empty() || self.contains(id) {
            return None;
        }
        let weights: Vec<f64> = self.slots.iter().map(|&s| weight(s).max(0.0)).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut draw = rng.gen_range(0.0..total);
        let mut victim_slot = weights.len() - 1;
        for (slot, &w) in weights.iter().enumerate() {
            if draw < w {
                victim_slot = slot;
                break;
            }
            draw -= w;
        }
        let evicted = self.slots[victim_slot];
        self.slots[victim_slot] = id;
        if let Some(positions) = &mut self.positions {
            positions.remove(&evicted);
            positions.insert(id, victim_slot);
        }
        Some(evicted)
    }

    /// Draws a uniformly random resident (the output step of both
    /// algorithms); `None` when empty. The resident is *not* removed.
    #[inline]
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.slots.is_empty() {
            None
        } else {
            Some(self.slots[rng.gen_range(0..self.slots.len())])
        }
    }

    /// Iterates over the residents in slot order.
    pub fn iter(&self) -> std::slice::Iter<'_, NodeId> {
        self.slots.iter()
    }

    /// The residents as a slice in slot order.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.slots
    }
}

impl<'a> IntoIterator for &'a SamplingMemory {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.slots.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn zero_capacity_is_rejected() {
        assert_eq!(SamplingMemory::new(0).unwrap_err(), crate::CoreError::ZeroCapacity);
    }

    #[test]
    fn set_semantics_and_capacity() {
        let mut gamma = SamplingMemory::new(3).unwrap();
        assert!(gamma.is_empty());
        assert!(gamma.insert(NodeId::new(1)));
        assert!(!gamma.insert(NodeId::new(1)));
        assert!(gamma.insert(NodeId::new(2)));
        assert!(gamma.insert(NodeId::new(3)));
        assert!(gamma.is_full());
        assert_eq!(gamma.len(), 3);
        assert_eq!(gamma.capacity(), 3);
        assert!(gamma.contains(NodeId::new(2)));
        assert!(!gamma.contains(NodeId::new(9)));
    }

    #[test]
    #[should_panic(expected = "full sampling memory")]
    fn insert_on_full_memory_panics() {
        let mut gamma = SamplingMemory::new(1).unwrap();
        gamma.insert(NodeId::new(1));
        gamma.insert(NodeId::new(2));
    }

    #[test]
    fn replace_uniform_swaps_exactly_one() {
        let mut gamma = SamplingMemory::new(4).unwrap();
        for i in 0..4u64 {
            gamma.insert(NodeId::new(i));
        }
        let mut rng = StdRng::seed_from_u64(5);
        let evicted = gamma.replace_uniform(&mut rng, NodeId::new(99)).unwrap();
        assert!(evicted.as_u64() < 4);
        assert!(gamma.contains(NodeId::new(99)));
        assert!(!gamma.contains(evicted));
        assert_eq!(gamma.len(), 4);
    }

    #[test]
    fn replace_uniform_noop_for_resident_or_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut empty = SamplingMemory::new(2).unwrap();
        assert_eq!(empty.replace_uniform(&mut rng, NodeId::new(1)), None);
        let mut gamma = SamplingMemory::new(2).unwrap();
        gamma.insert(NodeId::new(1));
        gamma.insert(NodeId::new(2));
        assert_eq!(gamma.replace_uniform(&mut rng, NodeId::new(1)), None);
        assert_eq!(gamma.len(), 2);
    }

    #[test]
    fn eviction_is_statistically_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 40_000;
        let mut evictions: HashMap<NodeId, u64> = HashMap::new();
        for _ in 0..trials {
            let mut gamma = SamplingMemory::new(4).unwrap();
            for i in 0..4u64 {
                gamma.insert(NodeId::new(i));
            }
            let evicted = gamma.replace_uniform(&mut rng, NodeId::new(100)).unwrap();
            *evictions.entry(evicted).or_insert(0) += 1;
        }
        for i in 0..4u64 {
            let count = evictions[&NodeId::new(i)];
            let expected = trials as f64 / 4.0;
            assert!(
                (count as f64 - expected).abs() < expected * 0.1,
                "slot {i} evicted {count} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn weighted_eviction_follows_weights() {
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 60_000;
        let mut evictions: HashMap<NodeId, u64> = HashMap::new();
        for _ in 0..trials {
            let mut gamma = SamplingMemory::new(2).unwrap();
            gamma.insert(NodeId::new(0));
            gamma.insert(NodeId::new(1));
            // id 1 is three times more likely to be evicted.
            let evicted = gamma
                .replace_weighted(&mut rng, NodeId::new(9), |id| {
                    if id.as_u64() == 1 {
                        3.0
                    } else {
                        1.0
                    }
                })
                .unwrap();
            *evictions.entry(evicted).or_insert(0) += 1;
        }
        let heavy = evictions[&NodeId::new(1)] as f64 / trials as f64;
        assert!((heavy - 0.75).abs() < 0.02, "weighted eviction rate {heavy}, expected 0.75");
    }

    #[test]
    fn weighted_eviction_zero_weights_is_noop() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut gamma = SamplingMemory::new(2).unwrap();
        gamma.insert(NodeId::new(0));
        gamma.insert(NodeId::new(1));
        assert_eq!(gamma.replace_weighted(&mut rng, NodeId::new(9), |_| 0.0), None);
        assert!(gamma.contains(NodeId::new(0)));
    }

    #[test]
    fn sampling_is_statistically_uniform() {
        let mut gamma = SamplingMemory::new(5).unwrap();
        for i in 0..5u64 {
            gamma.insert(NodeId::new(i));
        }
        let mut rng = StdRng::seed_from_u64(10);
        let trials = 50_000;
        let mut counts: HashMap<NodeId, u64> = HashMap::new();
        for _ in 0..trials {
            *counts.entry(gamma.sample_uniform(&mut rng).unwrap()).or_insert(0) += 1;
        }
        for i in 0..5u64 {
            let count = counts[&NodeId::new(i)];
            let expected = trials as f64 / 5.0;
            assert!(
                (count as f64 - expected).abs() < expected * 0.1,
                "id {i} sampled {count} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn sample_of_empty_memory_is_none() {
        let gamma = SamplingMemory::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(gamma.sample_uniform(&mut rng), None);
    }

    #[test]
    fn scan_and_indexed_modes_behave_identically() {
        // Capacities straddling SCAN_CAPACITY run the same operation
        // sequence with the same coins; outcomes must agree operation for
        // operation wherever both memories are in the same logical state.
        for capacity in [32usize, 33] {
            let mut rng = StdRng::seed_from_u64(12);
            let mut gamma = SamplingMemory::new(capacity).unwrap();
            for i in 0..32u64 {
                assert!(gamma.insert(NodeId::new(i)));
                assert!(!gamma.insert(NodeId::new(i)), "duplicate accepted at capacity {capacity}");
            }
            for i in 0..32u64 {
                assert!(gamma.contains(NodeId::new(i)));
            }
            assert!(!gamma.contains(NodeId::new(99)));
            // Fill to capacity, then churn through evictions; membership
            // must track the slot vector exactly in both modes.
            while !gamma.is_full() {
                gamma.insert(NodeId::new(1_000 + gamma.len() as u64));
            }
            for round in 0..2_000u64 {
                let id = NodeId::new(2_000 + round % 80);
                let evicted = gamma.replace_uniform(&mut rng, id);
                if let Some(evicted) = evicted {
                    assert!(!gamma.contains(evicted), "evicted id still answers membership");
                    assert!(gamma.contains(id));
                }
                assert_eq!(gamma.len(), capacity);
                let residents: std::collections::HashSet<NodeId> = gamma.iter().copied().collect();
                assert_eq!(residents.len(), capacity, "slot vector grew a duplicate");
                for &resident in gamma.as_slice() {
                    assert!(gamma.contains(resident));
                }
            }
        }
    }

    #[test]
    fn iteration_matches_contents() {
        let mut gamma = SamplingMemory::new(3).unwrap();
        gamma.insert(NodeId::new(5));
        gamma.insert(NodeId::new(6));
        let ids: Vec<u64> = gamma.iter().map(|id| id.as_u64()).collect();
        assert_eq!(ids, vec![5, 6]);
        let ids: Vec<u64> = (&gamma).into_iter().map(|id| id.as_u64()).collect();
        assert_eq!(ids, vec![5, 6]);
        assert_eq!(gamma.as_slice().len(), 2);
    }
}
