//! Node identifiers.
//!
//! The paper draws identifiers from `Ω = {1, …, 2^r}` with `r = 160`
//! (SHA-1). This implementation uses 64-bit identifiers: collision-freeness
//! only matters up to the simulated population sizes (`≤ 2^20` nodes in the
//! paper's experiments), and 64 bits keep identifiers `Copy` and hashable at
//! full speed. The newtype keeps identifiers from being confused with
//! counts, indices or sizes anywhere in the API.

use std::fmt;

/// A 64-bit node identifier.
///
/// # Example
///
/// ```
/// use uns_core::NodeId;
///
/// let id = NodeId::new(42);
/// assert_eq!(id.as_u64(), 42);
/// assert_eq!(u64::from(id), 42);
/// assert_eq!(NodeId::from(42u64), id);
/// assert_eq!(id.to_string(), "42");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates an identifier from its raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn conversions_roundtrip() {
        let id = NodeId::new(u64::MAX);
        assert_eq!(NodeId::from(u64::from(id)), id);
        assert_eq!(id.as_u64(), u64::MAX);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn formatting() {
        let id = NodeId::new(255);
        assert_eq!(format!("{id}"), "255");
        assert_eq!(format!("{id:x}"), "ff");
        assert_eq!(format!("{id:X}"), "FF");
        assert_eq!(format!("{id:?}"), "NodeId(255)");
    }

    #[test]
    fn usable_in_hash_sets() {
        let set: HashSet<NodeId> = (0..10u64).map(NodeId::new).collect();
        assert_eq!(set.len(), 10);
        assert!(set.contains(&NodeId::new(5)));
    }
}
