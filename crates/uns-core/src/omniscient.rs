//! The omniscient one-pass strategy — the paper's Algorithm 1.
//!
//! The omniscient strategy knows, for every identifier `j` it reads, the
//! occurrence probability `p_j` of `j` over the whole input stream (but not
//! which identifiers will appear — that knowledge builds up on the fly).
//! On reading `j` it:
//!
//! 1. inserts `j` into `Γ` outright while `|Γ| < c`;
//! 2. otherwise, with probability `a_j = min_i(p_i)/p_j`, evicts a resident
//!    chosen with probability `r_k/Σ_{ℓ∈Γ} r_ℓ` (uniform, since the paper
//!    takes `r_j = 1/n`) and inserts `j`;
//! 3. outputs a uniformly chosen resident of `Γ`.
//!
//! Corollary 5: with these `(a_j)` and `(r_j)` the output satisfies
//! Uniformity and Freshness *whatever bias the adversary injects* — rare
//! identifiers are almost always admitted, frequent ones almost always
//! rejected, exactly cancelling the stream's bias.

use crate::error::CoreError;
use crate::memory::SamplingMemory;
use crate::node_id::NodeId;
use crate::sampler::NodeSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's Algorithm 1: omniscient Byzantine-tolerant node sampling.
///
/// Identifiers are the integers `0..n` indexing the supplied occurrence
/// distribution; identifiers outside the distribution's support are treated
/// as maximally rare (`a_j = 1`), the conservative choice for identifiers
/// the omniscient oracle has no entry for.
///
/// # Example
///
/// ```
/// use uns_core::{NodeId, NodeSampler, OmniscientSampler};
///
/// # fn main() -> Result<(), uns_core::CoreError> {
/// // id 0 floods 96% of the stream; ids 1..5 share the rest.
/// let p = [0.96, 0.01, 0.01, 0.01, 0.01];
/// let mut sampler = OmniscientSampler::new(3, &p, 7)?;
/// for i in 0..5_000u64 {
///     let id = if i % 25 == 0 { 1 + (i / 25) % 4 } else { 0 };
///     sampler.feed(NodeId::new(id));
/// }
/// // All five identifiers are candidates for the memory despite the flood.
/// assert!(sampler.capacity() == 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct OmniscientSampler {
    memory: SamplingMemory,
    probs: Vec<f64>,
    p_min: f64,
    rng: StdRng,
}

impl OmniscientSampler {
    /// Creates the sampler with memory size `c = capacity` and the known
    /// occurrence distribution `probs` (indexed by identifier value).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`,
    /// [`CoreError::EmptyDistribution`] if `probs` is empty,
    /// [`CoreError::InvalidProbability`] if any entry is non-positive or
    /// non-finite, and [`CoreError::DistributionNotNormalized`] unless the
    /// entries sum to 1 (within 1e-6).
    pub fn new(capacity: usize, probs: &[f64], seed: u64) -> Result<Self, CoreError> {
        if probs.is_empty() {
            return Err(CoreError::EmptyDistribution);
        }
        for (index, &value) in probs.iter().enumerate() {
            if !(value.is_finite() && value > 0.0) {
                return Err(CoreError::InvalidProbability { index, value });
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(CoreError::DistributionNotNormalized { sum });
        }
        let p_min = probs.iter().cloned().fold(f64::INFINITY, f64::min);
        Ok(Self {
            memory: SamplingMemory::new(capacity)?,
            probs: probs.to_vec(),
            p_min,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The insertion probability `a_j = min_i(p_i)/p_j` this sampler uses
    /// for identifier `id` (1 for identifiers outside the known
    /// distribution).
    pub fn insertion_probability(&self, id: NodeId) -> f64 {
        match usize::try_from(id.as_u64()).ok().and_then(|i| self.probs.get(i)) {
            Some(&p_j) => (self.p_min / p_j).min(1.0),
            None => 1.0,
        }
    }

    /// Size of the known population `n`.
    pub fn population(&self) -> usize {
        self.probs.len()
    }
}

impl OmniscientSampler {
    /// The input half of `feed`: admission/eviction without an output draw.
    #[inline]
    fn absorb(&mut self, id: NodeId) {
        if !self.memory.is_full() {
            self.memory.insert(id); // no-op when already resident
        } else if !self.memory.contains(id) {
            let a_j = self.insertion_probability(id);
            if self.rng.gen::<f64>() < a_j {
                // r_j = 1/n makes the removal distribution uniform over Γ.
                self.memory.replace_uniform(&mut self.rng, id);
            }
        }
    }
}

impl NodeSampler for OmniscientSampler {
    fn feed(&mut self, id: NodeId) -> NodeId {
        self.absorb(id);
        self.memory
            .sample_uniform(&mut self.rng)
            .expect("memory is non-empty after feeding at least one identifier")
    }

    /// Input-only path (see the [`NodeSampler`] contract): no output draw.
    fn ingest(&mut self, id: NodeId) {
        self.absorb(id);
    }

    /// Monomorphic batch loop (same results as element-wise [`feed`], per
    /// the trait contract) — mirrors the knowledge-free sampler's override
    /// so the two strategies pay comparable per-batch overhead in the
    /// estimator ablations.
    ///
    /// [`feed`]: NodeSampler::feed
    fn feed_batch(&mut self, ids: &[NodeId], out: &mut Vec<NodeId>) {
        out.reserve(ids.len());
        for &id in ids {
            self.absorb(id);
            out.push(
                self.memory
                    .sample_uniform(&mut self.rng)
                    .expect("memory is non-empty after feeding at least one identifier"),
            );
        }
    }

    fn sample(&mut self) -> Option<NodeId> {
        self.memory.sample_uniform(&mut self.rng)
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.memory.iter().copied().collect()
    }

    fn capacity(&self) -> usize {
        self.memory.capacity()
    }

    fn strategy_name(&self) -> &'static str {
        "omniscient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn uniform_probs(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    #[test]
    fn constructor_validates_inputs() {
        assert_eq!(
            OmniscientSampler::new(0, &uniform_probs(4), 0).unwrap_err(),
            CoreError::ZeroCapacity
        );
        assert_eq!(OmniscientSampler::new(2, &[], 0).unwrap_err(), CoreError::EmptyDistribution);
        assert!(matches!(
            OmniscientSampler::new(2, &[0.5, 0.0, 0.5], 0),
            Err(CoreError::InvalidProbability { index: 1, .. })
        ));
        assert!(matches!(
            OmniscientSampler::new(2, &[0.5, f64::NAN], 0),
            Err(CoreError::InvalidProbability { .. })
        ));
        assert!(matches!(
            OmniscientSampler::new(2, &[0.5, 0.4], 0),
            Err(CoreError::DistributionNotNormalized { .. })
        ));
    }

    #[test]
    fn insertion_probability_matches_corollary5() {
        let p = [0.7, 0.2, 0.1];
        let sampler = OmniscientSampler::new(2, &p, 0).unwrap();
        assert!((sampler.insertion_probability(NodeId::new(0)) - 0.1 / 0.7).abs() < 1e-12);
        assert!((sampler.insertion_probability(NodeId::new(1)) - 0.5).abs() < 1e-12);
        assert_eq!(sampler.insertion_probability(NodeId::new(2)), 1.0);
        // Unknown identifier: maximally rare.
        assert_eq!(sampler.insertion_probability(NodeId::new(99)), 1.0);
        assert_eq!(sampler.population(), 3);
    }

    #[test]
    fn sample_is_none_before_first_feed_then_some() {
        let mut sampler = OmniscientSampler::new(2, &uniform_probs(4), 1).unwrap();
        assert_eq!(sampler.sample(), None);
        let out = sampler.feed(NodeId::new(3));
        assert_eq!(out, NodeId::new(3)); // only resident
        assert_eq!(sampler.sample(), Some(NodeId::new(3)));
    }

    #[test]
    fn output_is_always_a_memory_resident() {
        let mut sampler = OmniscientSampler::new(3, &uniform_probs(8), 2).unwrap();
        for i in 0..1_000u64 {
            let out = sampler.feed(NodeId::new(i % 8));
            let residents: HashSet<NodeId> = sampler.memory_contents().into_iter().collect();
            assert!(residents.contains(&out));
            assert!(residents.len() <= 3);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let p = uniform_probs(16);
        let stream: Vec<NodeId> = (0..500u64).map(|i| NodeId::new(i * 7 % 16)).collect();
        let mut a = OmniscientSampler::new(4, &p, 99).unwrap();
        let mut b = OmniscientSampler::new(4, &p, 99).unwrap();
        assert_eq!(a.run(stream.clone()), b.run(stream));
    }

    #[test]
    fn strategy_metadata() {
        let sampler = OmniscientSampler::new(5, &uniform_probs(10), 0).unwrap();
        assert_eq!(sampler.capacity(), 5);
        assert_eq!(sampler.strategy_name(), "omniscient");
    }

    #[test]
    fn frequent_ids_rarely_displace_residents() {
        // id 0 has p = 0.9 → a_0 = p_min/p_0 ≈ 0.028. Count how often a
        // flood of id 0 changes the memory once rare ids are resident.
        let p = [0.9, 0.025, 0.025, 0.025, 0.025];
        let mut sampler = OmniscientSampler::new(4, &p, 3).unwrap();
        for id in 1..5u64 {
            sampler.feed(NodeId::new(id)); // fill Γ with the rare ids
        }
        let before: HashSet<NodeId> = sampler.memory_contents().into_iter().collect();
        let mut displacements = 0;
        let floods = 2_000;
        for _ in 0..floods {
            sampler.feed(NodeId::new(0));
            let after: HashSet<NodeId> = sampler.memory_contents().into_iter().collect();
            if after != before {
                displacements += 1;
                break;
            }
        }
        // a_0 ≈ 0.0278, so the flood needs ~36 elements on average to enter
        // once — but each entry also requires id 0 absent, and once resident
        // it stays until evicted. We only assert the flood cannot storm the
        // memory immediately: the first displacement takes more than one
        // element with overwhelming probability under this seed.
        assert!(displacements <= 1);
        // Rare ids remain in memory with high probability (3 of 4 slots).
        let after: HashSet<NodeId> = sampler.memory_contents().into_iter().collect();
        let rare_kept = after.iter().filter(|id| id.as_u64() != 0).count();
        assert!(rare_kept >= 3, "flood displaced too many rare ids: {after:?}");
    }

    #[test]
    fn freshness_every_id_keeps_appearing() {
        let n = 10usize;
        let mut sampler = OmniscientSampler::new(3, &uniform_probs(n), 5).unwrap();
        let mut seen_last_window: HashSet<u64> = HashSet::new();
        // Two windows: every id must appear in each (freshness, not just
        // eventual appearance).
        for window in 0..2 {
            seen_last_window.clear();
            for i in 0..20_000u64 {
                let out = sampler.feed(NodeId::new((window * 13 + i * 7) % n as u64));
                seen_last_window.insert(out.as_u64());
            }
            assert_eq!(seen_last_window.len(), n, "window {window} missed ids");
        }
    }
}
