//! The node sampling service interface.
//!
//! A sampling service is local to each correct node (paper §IV): it
//! continuously reads the node's input stream of identifiers and, for every
//! element read, emits one identifier on its output stream. The service is
//! judged by two properties over its output stream:
//!
//! * **Uniformity** (Property 1): `P{S_i(t) = j} = 1/n` for every node `j`;
//! * **Freshness** (Property 2): every node recurs in the output infinitely
//!   often with probability 1.

use crate::node_id::NodeId;

/// A one-pass node sampling strategy.
///
/// Implementations read one identifier at a time ([`NodeSampler::feed`])
/// and return the identifier written to the output stream for that step —
/// the `k′` of Algorithms 1 and 3. All implementations in this crate are
/// deterministic functions of their construction seed and input stream.
pub trait NodeSampler {
    /// Reads one identifier from the input stream and returns the
    /// identifier emitted on the output stream for this step.
    fn feed(&mut self, id: NodeId) -> NodeId;

    /// Draws an output sample without consuming any input — `None` before
    /// the first [`NodeSampler::feed`].
    fn sample(&mut self) -> Option<NodeId>;

    /// Snapshot of the identifiers currently held in local memory (`Γ` for
    /// the paper's strategies, the reservoir/min-wise state for baselines).
    fn memory_contents(&self) -> Vec<NodeId>;

    /// Configured capacity of the local memory (`c`); 0 for memoryless
    /// strategies.
    fn capacity(&self) -> usize;

    /// Human-readable strategy name for reports and plots.
    fn strategy_name(&self) -> &'static str;

    /// Feeds a whole stream and collects the output stream.
    ///
    /// Convenience for experiments; equivalent to mapping
    /// [`NodeSampler::feed`] over `ids`.
    fn run<I>(&mut self, ids: I) -> Vec<NodeId>
    where
        I: IntoIterator<Item = NodeId>,
        Self: Sized,
    {
        ids.into_iter().map(|id| self.feed(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal conforming implementation used to exercise the provided
    /// method and object safety.
    struct Echo {
        last: Option<NodeId>,
    }

    impl NodeSampler for Echo {
        fn feed(&mut self, id: NodeId) -> NodeId {
            self.last = Some(id);
            id
        }
        fn sample(&mut self) -> Option<NodeId> {
            self.last
        }
        fn memory_contents(&self) -> Vec<NodeId> {
            self.last.into_iter().collect()
        }
        fn capacity(&self) -> usize {
            0
        }
        fn strategy_name(&self) -> &'static str {
            "echo"
        }
    }

    #[test]
    fn run_maps_feed_over_stream() {
        let mut echo = Echo { last: None };
        let out = echo.run((0..5u64).map(NodeId::new));
        assert_eq!(out, (0..5u64).map(NodeId::new).collect::<Vec<_>>());
        assert_eq!(echo.sample(), Some(NodeId::new(4)));
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn NodeSampler> = Box::new(Echo { last: None });
        assert_eq!(boxed.sample(), None);
        boxed.feed(NodeId::new(3));
        assert_eq!(boxed.memory_contents(), vec![NodeId::new(3)]);
        assert_eq!(boxed.capacity(), 0);
        assert_eq!(boxed.strategy_name(), "echo");
    }
}
