//! The node sampling service interface.
//!
//! A sampling service is local to each correct node (paper §IV): it
//! continuously reads the node's input stream of identifiers and, for every
//! element read, emits one identifier on its output stream. The service is
//! judged by two properties over its output stream:
//!
//! * **Uniformity** (Property 1): `P{S_i(t) = j} = 1/n` for every node `j`;
//! * **Freshness** (Property 2): every node recurs in the output infinitely
//!   often with probability 1.

use crate::node_id::NodeId;

/// A one-pass node sampling strategy.
///
/// Implementations read one identifier at a time ([`NodeSampler::feed`])
/// and return the identifier written to the output stream for that step —
/// the `k′` of Algorithms 1 and 3. All implementations in this crate are
/// deterministic functions of their construction seed and input stream.
///
/// # The ingest / feed / feed_batch contract
///
/// [`feed`] decomposes into two halves: updating internal state from the
/// input element, then drawing the output sample. Callers that only need
/// the service's *state* — warming a sampler from a backlog, sharded
/// ingestion, overlay nodes that read views but not per-element outputs —
/// pay for an output draw they discard. The contract relating the three
/// entry points, which every implementation must uphold:
///
/// * `feed(id)` ≡ `ingest(id)` followed by one output draw ([`sample`]):
///   both paths consume the strategy's random coins in the same order, so
///   `ingest(id); sample()` leaves the sampler (memory **and** RNG) in
///   exactly the state `feed(id)` would, and returns the same output.
/// * `feed_batch(ids, out)` appends exactly `ids.len()` outputs to `out`
///   and is element-wise identical to `for id in ids { out.push(feed(id)) }`
///   under the same seed. Implementations override it to amortize
///   per-call overhead (reservation, monomorphic inner loops), never to
///   change results.
/// * [`ingest`] alone (without a balancing `sample`) is the *input-only*
///   path: memory state still evolves exactly as specified by the paper's
///   insertion/eviction rules, but no uniform output draw is made, so
///   subsequent coin-consuming draws differ from a `feed` history. That is
///   the intended trade — skipping the draw is what makes backlog
///   ingestion cheaper — not a divergence in the sampling policy.
///
/// Because every entry point pins an exact *coin order* (one admission
/// coin per full-memory non-resident element, one eviction draw per
/// admission, one output draw per `feed`), the estimator half and the
/// memory/coin half of an element can be computed by different parties:
/// `KnowledgeFreeSampler::absorb_precomputed` /
/// `KnowledgeFreeSampler::feed_precomputed` (in this crate's
/// `knowledge_free` module) replay externally computed `(f̂_j, min_σ)`
/// pairs with bit-equal results — the contract the parallel sampling
/// pipeline in `uns-sim` relies on.
///
/// # Blocked coins
///
/// *Where* the coins come from is orthogonal to this contract. The
/// knowledge-free sampler's default generator is **blocked**
/// (`rand::rngs::BlockRng<SmallRng>`): words are pre-drawn in 64-word
/// blocks and every entry point serves its coins from that buffer. The
/// emitted word sequence is identical to the plain generator's for the
/// same seed, so the block boundary is observable **nowhere** — not in
/// outputs, admissions, evictions, or any equivalence above; element-wise
/// and batched histories interleave freely and snapshots taken under one
/// entry-point mix resume bit-equal under another (the pending pre-drawn
/// words are part of the generator's snapshot state). Pinned by proptests
/// in `uns-core` and at full scale in release CI.
///
/// # Recovery contract
///
/// Determinism-from-seed-and-stream is also what makes crash recovery by
/// *replay* exact: re-applying a logged suffix of operations to a
/// restored snapshot must reproduce the uninterrupted sampler bit for
/// bit. That holds only if **every** coin-consuming operation is part of
/// the replayed history — including output-only draws ([`sample`]), which
/// advance the generator without touching memory. A write-ahead log that
/// records inserts but not sample draws replays into a sampler whose
/// memory matches and whose *future outputs* do not. `uns-service`'s
/// durable server therefore logs `Ingest`, `FeedBatch`, **and** `Sample`,
/// and its crash-recovery suite pins snapshot + replay bit-equal (memory
/// `Γ`, estimator cells, RNG state) to a server that never crashed.
///
/// [`feed`]: NodeSampler::feed
/// [`ingest`]: NodeSampler::ingest
/// [`sample`]: NodeSampler::sample
pub trait NodeSampler {
    /// Reads one identifier from the input stream and returns the
    /// identifier emitted on the output stream for this step.
    fn feed(&mut self, id: NodeId) -> NodeId;

    /// Reads one identifier from the input stream *without* drawing an
    /// output sample.
    ///
    /// The default discards [`NodeSampler::feed`]'s output, which is
    /// correct but pays for the draw; strategies whose output step costs
    /// RNG work override it. See the trait docs for the exact contract.
    fn ingest(&mut self, id: NodeId) {
        let _ = self.feed(id);
    }

    /// Feeds a slice of identifiers, appending one output per element to
    /// `out`.
    ///
    /// Element-wise identical to repeated [`NodeSampler::feed`]; see the
    /// trait docs. Overrides exist purely for throughput: the provided
    /// method already reserves the output space, and concrete samplers
    /// replace the dynamically-dispatched per-element call with a
    /// monomorphic loop.
    fn feed_batch(&mut self, ids: &[NodeId], out: &mut Vec<NodeId>) {
        out.reserve(ids.len());
        for &id in ids {
            out.push(self.feed(id));
        }
    }

    /// Draws an output sample without consuming any input — `None` before
    /// the first [`NodeSampler::feed`].
    fn sample(&mut self) -> Option<NodeId>;

    /// Snapshot of the identifiers currently held in local memory (`Γ` for
    /// the paper's strategies, the reservoir/min-wise state for baselines).
    fn memory_contents(&self) -> Vec<NodeId>;

    /// Configured capacity of the local memory (`c`); 0 for memoryless
    /// strategies.
    fn capacity(&self) -> usize;

    /// Human-readable strategy name for reports and plots.
    fn strategy_name(&self) -> &'static str;

    /// Feeds a whole stream and collects the output stream.
    ///
    /// Convenience for experiments; equivalent to mapping
    /// [`NodeSampler::feed`] over `ids`.
    fn run<I>(&mut self, ids: I) -> Vec<NodeId>
    where
        I: IntoIterator<Item = NodeId>,
        Self: Sized,
    {
        ids.into_iter().map(|id| self.feed(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal conforming implementation used to exercise the provided
    /// method and object safety.
    struct Echo {
        last: Option<NodeId>,
    }

    impl NodeSampler for Echo {
        fn feed(&mut self, id: NodeId) -> NodeId {
            self.last = Some(id);
            id
        }
        fn sample(&mut self) -> Option<NodeId> {
            self.last
        }
        fn memory_contents(&self) -> Vec<NodeId> {
            self.last.into_iter().collect()
        }
        fn capacity(&self) -> usize {
            0
        }
        fn strategy_name(&self) -> &'static str {
            "echo"
        }
    }

    #[test]
    fn run_maps_feed_over_stream() {
        let mut echo = Echo { last: None };
        let out = echo.run((0..5u64).map(NodeId::new));
        assert_eq!(out, (0..5u64).map(NodeId::new).collect::<Vec<_>>());
        assert_eq!(echo.sample(), Some(NodeId::new(4)));
    }

    #[test]
    fn default_ingest_and_feed_batch_delegate_to_feed() {
        let mut echo = Echo { last: None };
        echo.ingest(NodeId::new(7));
        assert_eq!(echo.sample(), Some(NodeId::new(7)));
        let ids: Vec<NodeId> = (0..6u64).map(NodeId::new).collect();
        let mut out = Vec::new();
        echo.feed_batch(&ids, &mut out);
        assert_eq!(out, ids);
        // feed_batch appends, never clears.
        echo.feed_batch(&ids[..2], &mut out);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn NodeSampler> = Box::new(Echo { last: None });
        assert_eq!(boxed.sample(), None);
        boxed.feed(NodeId::new(3));
        boxed.ingest(NodeId::new(4));
        let mut out = Vec::new();
        boxed.feed_batch(&[NodeId::new(5)], &mut out);
        assert_eq!(out, vec![NodeId::new(5)]);
        assert_eq!(boxed.memory_contents(), vec![NodeId::new(5)]);
        assert_eq!(boxed.capacity(), 0);
        assert_eq!(boxed.strategy_name(), "echo");
    }
}
