//! Error types for sampler construction.

use std::error::Error;
use std::fmt;
use uns_sketch::SketchError;

/// Errors returned when configuring a sampling strategy.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// The sampling memory `Γ` must hold at least one identifier.
    ZeroCapacity,
    /// The omniscient sampler needs a non-empty occurrence distribution.
    EmptyDistribution,
    /// An occurrence probability was not a finite positive number.
    InvalidProbability {
        /// Index of the offending entry in the distribution vector.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// The occurrence distribution does not sum to 1.
    DistributionNotNormalized {
        /// The actual sum of the provided probabilities.
        sum: f64,
    },
    /// A sketch substrate rejected its parameters.
    Sketch(SketchError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ZeroCapacity => {
                write!(f, "sampling memory capacity c must be at least 1")
            }
            CoreError::EmptyDistribution => {
                write!(f, "occurrence distribution must be non-empty")
            }
            CoreError::InvalidProbability { index, value } => {
                write!(f, "occurrence probability at index {index} must be finite and positive, got {value}")
            }
            CoreError::DistributionNotNormalized { sum } => {
                write!(f, "occurrence probabilities must sum to 1, sum to {sum}")
            }
            CoreError::Sketch(err) => write!(f, "sketch configuration rejected: {err}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sketch(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SketchError> for CoreError {
    fn from(err: SketchError) -> Self {
        CoreError::Sketch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            CoreError::ZeroCapacity,
            CoreError::EmptyDistribution,
            CoreError::InvalidProbability { index: 3, value: -0.5 },
            CoreError::DistributionNotNormalized { sum: 0.9 },
            CoreError::Sketch(SketchError::ZeroWidth),
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn sketch_error_is_wrapped_with_source() {
        let err = CoreError::from(SketchError::ZeroDepth);
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
