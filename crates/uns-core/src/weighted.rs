//! Algorithm 1 in its full generality: arbitrary insertion probabilities
//! `(a_j)` and removal weights `(r_j)`.
//!
//! Before specializing to `a_j = min_i(p_i)/p_j` and `r_j = 1/n`
//! (Corollary 5), the paper analyses Algorithm 1 for *any* positive vectors
//! `(a_j)` and `(r_j)`: the induced chain is reversible with stationary
//! distribution `π_A ∝ (Σ_{ℓ∈A} r_ℓ)(Π_{h∈A} p_h a_h / r_h)` (Theorem 3).
//! [`WeightedSampler`] realizes that general algorithm so the closed form
//! can be validated against a *running* sampler, not just the transition
//! matrix — and so downstream users can experiment with other policies
//! (e.g. frequency-proportional eviction, see the `repro eviction`
//! ablation).

use crate::error::CoreError;
use crate::memory::SamplingMemory;
use crate::node_id::NodeId;
use crate::sampler::NodeSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The general Algorithm 1: explicit per-identifier insertion
/// probabilities and removal weights over the domain `0..n`.
///
/// # Example
///
/// ```
/// use uns_core::{NodeId, NodeSampler, WeightedSampler};
///
/// # fn main() -> Result<(), uns_core::CoreError> {
/// // Insert id 0 rarely, evict id 1 preferentially.
/// let a = vec![0.1, 1.0, 1.0, 1.0];
/// let r = vec![1.0, 5.0, 1.0, 1.0];
/// let mut sampler = WeightedSampler::new(2, a, r, 9)?;
/// sampler.feed(NodeId::new(2));
/// sampler.feed(NodeId::new(3));
/// assert_eq!(sampler.capacity(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct WeightedSampler {
    memory: SamplingMemory,
    insertion: Vec<f64>,
    removal: Vec<f64>,
    rng: StdRng,
}

impl WeightedSampler {
    /// Creates the sampler with memory size `capacity`, insertion
    /// probabilities `insertion` (the `a_j`) and removal weights `removal`
    /// (the `r_j`), both indexed by identifier value.
    ///
    /// Identifiers outside the vectors use `a = 1` and `r = 1` (maximally
    /// insertable, uniformly evictable).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`,
    /// [`CoreError::EmptyDistribution`] if the vectors are empty or of
    /// different lengths, and [`CoreError::InvalidProbability`] if any
    /// `a_j ∉ (0, 1]` or any `r_j ≤ 0`.
    pub fn new(
        capacity: usize,
        insertion: Vec<f64>,
        removal: Vec<f64>,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if insertion.is_empty() || insertion.len() != removal.len() {
            return Err(CoreError::EmptyDistribution);
        }
        for (index, &a) in insertion.iter().enumerate() {
            if !(a.is_finite() && a > 0.0 && a <= 1.0) {
                return Err(CoreError::InvalidProbability { index, value: a });
            }
        }
        for (index, &r) in removal.iter().enumerate() {
            if !(r.is_finite() && r > 0.0) {
                return Err(CoreError::InvalidProbability { index, value: r });
            }
        }
        Ok(Self {
            memory: SamplingMemory::new(capacity)?,
            insertion,
            removal,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The insertion probability `a_id` in effect.
    pub fn insertion_probability(&self, id: NodeId) -> f64 {
        usize::try_from(id.as_u64())
            .ok()
            .and_then(|i| self.insertion.get(i))
            .copied()
            .unwrap_or(1.0)
    }

    /// The removal weight `r_id` in effect.
    pub fn removal_weight(&self, id: NodeId) -> f64 {
        usize::try_from(id.as_u64()).ok().and_then(|i| self.removal.get(i)).copied().unwrap_or(1.0)
    }
}

impl WeightedSampler {
    /// The input half of `feed`: admission/eviction without an output draw.
    fn absorb(&mut self, id: NodeId) {
        if !self.memory.is_full() {
            self.memory.insert(id);
        } else if !self.memory.contains(id) {
            let a_j = self.insertion_probability(id);
            if self.rng.gen::<f64>() < a_j {
                // Eviction with probability r_k / Σ_{ℓ∈Γ} r_ℓ (Alg. 1, l. 6).
                let removal = std::mem::take(&mut self.removal);
                self.memory.replace_weighted(&mut self.rng, id, |resident| {
                    usize::try_from(resident.as_u64())
                        .ok()
                        .and_then(|i| removal.get(i))
                        .copied()
                        .unwrap_or(1.0)
                });
                self.removal = removal;
            }
        }
    }
}

impl NodeSampler for WeightedSampler {
    fn feed(&mut self, id: NodeId) -> NodeId {
        self.absorb(id);
        self.memory
            .sample_uniform(&mut self.rng)
            .expect("memory is non-empty after feeding at least one identifier")
    }

    /// Input-only path (see the [`NodeSampler`] contract): no output draw.
    fn ingest(&mut self, id: NodeId) {
        self.absorb(id);
    }

    fn sample(&mut self) -> Option<NodeId> {
        self.memory.sample_uniform(&mut self.rng)
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.memory.iter().copied().collect()
    }

    fn capacity(&self) -> usize {
        self.memory.capacity()
    }

    fn strategy_name(&self) -> &'static str {
        "weighted (general Algorithm 1)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn constructor_validates_inputs() {
        assert_eq!(
            WeightedSampler::new(0, vec![1.0], vec![1.0], 0).unwrap_err(),
            CoreError::ZeroCapacity
        );
        assert_eq!(
            WeightedSampler::new(1, vec![], vec![], 0).unwrap_err(),
            CoreError::EmptyDistribution
        );
        assert_eq!(
            WeightedSampler::new(1, vec![1.0], vec![1.0, 1.0], 0).unwrap_err(),
            CoreError::EmptyDistribution
        );
        assert!(matches!(
            WeightedSampler::new(1, vec![0.0, 1.0], vec![1.0, 1.0], 0),
            Err(CoreError::InvalidProbability { index: 0, .. })
        ));
        assert!(matches!(
            WeightedSampler::new(1, vec![1.5, 1.0], vec![1.0, 1.0], 0),
            Err(CoreError::InvalidProbability { .. })
        ));
        assert!(matches!(
            WeightedSampler::new(1, vec![1.0, 1.0], vec![0.0, 1.0], 0),
            Err(CoreError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn out_of_range_ids_use_unit_weights() {
        let sampler = WeightedSampler::new(1, vec![0.5], vec![2.0], 0).unwrap();
        assert_eq!(sampler.insertion_probability(NodeId::new(0)), 0.5);
        assert_eq!(sampler.removal_weight(NodeId::new(0)), 2.0);
        assert_eq!(sampler.insertion_probability(NodeId::new(9)), 1.0);
        assert_eq!(sampler.removal_weight(NodeId::new(9)), 1.0);
        assert_eq!(sampler.strategy_name(), "weighted (general Algorithm 1)");
    }

    /// Theorem 3 against the *running* sampler: long-run residency rates
    /// match the closed-form stationary distribution for arbitrary
    /// (p, a, r) — not just the paper's uniform special case.
    #[test]
    fn theorem3_residency_matches_closed_form() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use uns_analysis::SubsetChain;

        let p = [0.4, 0.3, 0.2, 0.1];
        let a = vec![0.25, 0.5, 0.75, 1.0];
        let r = vec![0.1, 0.2, 0.3, 0.4];
        let c = 2usize;

        // Closed form γ_id = Σ_{A∋id} π_A from Theorem 3.
        let chain = SubsetChain::new(&p, &a, &r, c).unwrap();
        let pi = chain.theoretical_stationary();
        let gamma: Vec<f64> =
            (0..4).map(|id| chain.inclusion_probability(&pi, id).unwrap()).collect();

        // Live sampler, long-run residency.
        let mut sampler = WeightedSampler::new(c, a, r, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let cdf = [0.4, 0.7, 0.9, 1.0];
        let mut residency: HashMap<u64, u64> = HashMap::new();
        let steps = 600_000;
        let mut observations = 0u64;
        for step in 0..steps {
            let u: f64 = rand::Rng::gen(&mut rng);
            let id = cdf.iter().position(|&x| u < x).unwrap() as u64;
            sampler.feed(NodeId::new(id));
            if step > 20_000 {
                for resident in sampler.memory_contents() {
                    *residency.entry(resident.as_u64()).or_insert(0) += 1;
                }
                observations += 1;
            }
        }
        for id in 0..4u64 {
            let rate = *residency.get(&id).unwrap_or(&0) as f64 / observations as f64;
            assert!(
                (rate - gamma[id as usize]).abs() < 0.02,
                "id {id}: live residency {rate} vs Theorem 3 γ = {}",
                gamma[id as usize]
            );
        }
    }

    #[test]
    fn heavy_removal_weight_shortens_residency() {
        // id 0 has 10× the removal weight: it should be resident far less
        // often than id 1 under a uniform input stream.
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let a = vec![1.0; 8];
        let mut r = vec![1.0; 8];
        r[0] = 10.0;
        let mut sampler = WeightedSampler::new(3, a, r, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut residency = [0u64; 8];
        for step in 0..200_000 {
            let id: u64 = rand::Rng::gen_range(&mut rng, 0..8);
            sampler.feed(NodeId::new(id));
            if step > 5_000 {
                for resident in sampler.memory_contents() {
                    residency[resident.as_u64() as usize] += 1;
                }
            }
        }
        assert!(
            (residency[0] as f64) < residency[1] as f64 * 0.5,
            "heavy removal weight should halve residency: {residency:?}"
        );
    }
}
