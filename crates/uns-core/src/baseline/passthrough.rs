//! The identity sampler: output stream = input stream.
//!
//! The "no sampler" control. Its output divergence equals the input
//! divergence by construction, so its KL gain (paper's `G_KL`) is exactly
//! 0 — the floor every real strategy must beat.

use crate::node_id::NodeId;
use crate::sampler::NodeSampler;

/// Identity sampling strategy (gain-0 control).
///
/// # Example
///
/// ```
/// use uns_core::{NodeId, NodeSampler, PassthroughSampler};
///
/// let mut sampler = PassthroughSampler::new();
/// assert_eq!(sampler.feed(NodeId::new(9)), NodeId::new(9));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct PassthroughSampler {
    last: Option<NodeId>,
}

impl PassthroughSampler {
    /// Creates the identity sampler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NodeSampler for PassthroughSampler {
    fn feed(&mut self, id: NodeId) -> NodeId {
        self.last = Some(id);
        id
    }

    fn sample(&mut self) -> Option<NodeId> {
        self.last
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.last.into_iter().collect()
    }

    fn capacity(&self) -> usize {
        0
    }

    fn strategy_name(&self) -> &'static str {
        "passthrough"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echoes_its_input() {
        let mut sampler = PassthroughSampler::new();
        assert_eq!(sampler.sample(), None);
        for i in [5u64, 1, 1, 9] {
            assert_eq!(sampler.feed(NodeId::new(i)), NodeId::new(i));
        }
        assert_eq!(sampler.sample(), Some(NodeId::new(9)));
        assert_eq!(sampler.memory_contents(), vec![NodeId::new(9)]);
        assert_eq!(sampler.capacity(), 0);
        assert_eq!(sampler.strategy_name(), "passthrough");
    }
}
