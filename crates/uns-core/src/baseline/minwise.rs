//! Min-wise permutation sampling — the Brahms sampling component of
//! Bortnikov et al. (the paper's reference \[6\]).
//!
//! Each sampler draws a random hash function `h` and remembers the
//! identifier with the smallest image value ever read. By min-wise symmetry
//! the retained identifier converges to a uniform sample over the distinct
//! identifiers in the stream — *robust to frequency bias* — but once the
//! globally minimal identifier has been read, the sample is stuck forever:
//! the output no longer evolves with the system, which is exactly the
//! staticity the DSN 2013 paper improves upon (its Freshness property).

use crate::node_id::NodeId;
use crate::sampler::NodeSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A keyed bijective mixer over `u64` — an honest-to-goodness *permutation*
/// of the identifier space, randomized by two xor keys around a splitmix64
/// finalizer.
///
/// Min-wise sampling needs (approximately) min-wise independent
/// permutations; a linear 2-universal hash `(a·x + b) mod p` is provably
/// *not* min-wise independent (its arithmetic structure biases the argmin),
/// so the Brahms baseline uses this permutation family instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct KeyedPermutation {
    pre: u64,
    post: u64,
}

impl KeyedPermutation {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self { pre: rng.gen(), post: rng.gen() }
    }

    /// Applies the permutation. Every step is bijective on `u64`, so two
    /// distinct identifiers never collide.
    fn permute(&self, x: u64) -> u64 {
        let mut z = x ^ self.pre;
        // splitmix64 finalizer (bijective).
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        z ^ self.post
    }
}

/// A single min-wise permutation sampler (one Brahms sampler cell).
///
/// # Example
///
/// ```
/// use uns_core::{MinWiseSampler, NodeId, NodeSampler};
///
/// let mut sampler = MinWiseSampler::new(7);
/// sampler.feed(NodeId::new(10));
/// sampler.feed(NodeId::new(20));
/// // The retained sample is one of the ids read so far…
/// let kept = sampler.sample().unwrap();
/// assert!(kept == NodeId::new(10) || kept == NodeId::new(20));
/// // …and repeating the stream never changes it (staticity).
/// sampler.feed(NodeId::new(10));
/// sampler.feed(NodeId::new(20));
/// assert_eq!(sampler.sample(), Some(kept));
/// ```
#[derive(Clone, Debug)]
pub struct MinWiseSampler {
    hash: KeyedPermutation,
    current: Option<(NodeId, u64)>,
}

impl MinWiseSampler {
    /// Creates a sampler with a permutation drawn from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self { hash: KeyedPermutation::sample(&mut rng), current: None }
    }

    /// The current minimal hash value, if any identifier has been read.
    pub fn current_image(&self) -> Option<u64> {
        self.current.map(|(_, image)| image)
    }
}

impl NodeSampler for MinWiseSampler {
    fn feed(&mut self, id: NodeId) -> NodeId {
        let image = self.hash.permute(id.as_u64());
        match self.current {
            Some((_, best)) if best <= image => {}
            _ => self.current = Some((id, image)),
        }
        self.current.expect("just fed an identifier").0
    }

    fn sample(&mut self) -> Option<NodeId> {
        self.current.map(|(id, _)| id)
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.current.map(|(id, _)| id).into_iter().collect()
    }

    fn capacity(&self) -> usize {
        1
    }

    fn strategy_name(&self) -> &'static str {
        "min-wise"
    }
}

/// An array of `c` independent min-wise samplers whose output is a uniform
/// pick among the retained identifiers — the full Brahms sampling layer.
#[derive(Clone, Debug)]
pub struct MinWiseSamplerArray {
    cells: Vec<MinWiseSampler>,
    rng: StdRng,
}

impl MinWiseSamplerArray {
    /// Creates `capacity` independent min-wise samplers.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Result<Self, crate::CoreError> {
        if capacity == 0 {
            return Err(crate::CoreError::ZeroCapacity);
        }
        let cells = (0..capacity)
            .map(|i| {
                MinWiseSampler::new(seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            })
            .collect();
        Ok(Self { cells, rng: StdRng::seed_from_u64(seed) })
    }
}

impl NodeSampler for MinWiseSamplerArray {
    fn feed(&mut self, id: NodeId) -> NodeId {
        self.ingest(id);
        let pick = self.rng.gen_range(0..self.cells.len());
        self.cells[pick].current.expect("cells fed at least once").0
    }

    /// Input-only path (see the [`NodeSampler`] contract): updates every
    /// min-wise cell without drawing the uniform cell pick.
    fn ingest(&mut self, id: NodeId) {
        for cell in &mut self.cells {
            cell.feed(id);
        }
    }

    fn sample(&mut self) -> Option<NodeId> {
        let pick = self.rng.gen_range(0..self.cells.len());
        self.cells[pick].current.map(|(id, _)| id)
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.cells.iter().filter_map(|c| c.current.map(|(id, _)| id)).collect()
    }

    fn capacity(&self) -> usize {
        self.cells.len()
    }

    fn strategy_name(&self) -> &'static str {
        "min-wise array (Brahms)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn keeps_the_minimal_image() {
        let mut sampler = MinWiseSampler::new(3);
        assert_eq!(sampler.sample(), None);
        assert_eq!(sampler.current_image(), None);
        let ids: Vec<NodeId> = (0..50u64).map(NodeId::new).collect();
        for &id in &ids {
            sampler.feed(id);
        }
        let kept = sampler.sample().unwrap();
        let image = sampler.current_image().unwrap();
        // The kept id must be the argmin of the permutation over the stream.
        let hash = sampler.hash;
        let argmin = ids.iter().copied().min_by_key(|id| hash.permute(id.as_u64())).unwrap();
        assert_eq!(kept, argmin);
        assert_eq!(image, hash.permute(argmin.as_u64()));
    }

    #[test]
    fn static_after_convergence_even_under_flooding() {
        let mut sampler = MinWiseSampler::new(4);
        for i in 0..100u64 {
            sampler.feed(NodeId::new(i));
        }
        let converged = sampler.sample().unwrap();
        // An adversary floods a single id forever: the sample never moves —
        // robust, but also never fresh.
        for _ in 0..10_000 {
            let out = sampler.feed(NodeId::new(converged.as_u64() ^ 1));
            assert_eq!(out, converged);
        }
    }

    #[test]
    fn converged_sample_is_uniform_across_seeds() {
        // Across many independent permutations, the retained id is uniform
        // over the distinct ids regardless of their frequencies.
        let n = 10u64;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let trials = 20_000;
        for seed in 0..trials {
            let mut sampler = MinWiseSampler::new(seed);
            // id 0 floods the stream; all ids appear at least once.
            for i in 0..n {
                sampler.feed(NodeId::new(i));
            }
            for _ in 0..5 {
                sampler.feed(NodeId::new(0));
            }
            *counts.entry(sampler.sample().unwrap().as_u64()).or_insert(0) += 1;
        }
        let expected = trials as f64 / n as f64;
        for id in 0..n {
            let count = *counts.get(&id).unwrap_or(&0) as f64;
            assert!(
                (count - expected).abs() < expected * 0.15,
                "id {id} retained {count} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn array_outputs_come_from_cells() {
        let mut array = MinWiseSamplerArray::new(8, 5).unwrap();
        assert_eq!(array.capacity(), 8);
        assert_eq!(array.sample(), None);
        for i in 0..200u64 {
            array.feed(NodeId::new(i % 40));
        }
        let contents = array.memory_contents();
        assert_eq!(contents.len(), 8);
        for _ in 0..50 {
            let out = array.sample().unwrap();
            assert!(contents.contains(&out));
        }
        assert_eq!(array.strategy_name(), "min-wise array (Brahms)");
        assert!(MinWiseSamplerArray::new(0, 1).is_err());
    }

    #[test]
    fn keyed_permutation_is_injective() {
        use std::collections::HashSet;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let perm = KeyedPermutation::sample(&mut rng);
        let images: HashSet<u64> = (0..100_000u64).map(|x| perm.permute(x)).collect();
        assert_eq!(images.len(), 100_000, "permutation collided");
    }

    #[test]
    fn metadata() {
        let sampler = MinWiseSampler::new(0);
        assert_eq!(sampler.capacity(), 1);
        assert_eq!(sampler.strategy_name(), "min-wise");
        assert!(sampler.memory_contents().is_empty());
    }
}
