//! Baseline sampling strategies the paper compares against (or that a
//! practitioner would naively reach for).
//!
//! * [`minwise`] — the min-wise permutation sampler of Bortnikov et al.'s
//!   Brahms (the paper's main related work, reference \[6\]): converges to a uniform
//!   sample but is *static* — once converged it never changes, violating
//!   Freshness.
//! * [`reservoir`] — Vitter's Algorithm R: uniform over stream
//!   *occurrences*, so a flooding adversary fully controls it.
//! * [`passthrough`] — the identity sampler, the "do nothing" control whose
//!   output bias equals the input bias (gain 0 by construction).

pub mod minwise;
pub mod passthrough;
pub mod reservoir;
