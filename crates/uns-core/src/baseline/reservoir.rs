//! Reservoir sampling (Vitter's Algorithm R) — the classic stream sampler,
//! included as the "what goes wrong without Byzantine tolerance" baseline.
//!
//! Algorithm R keeps a uniform sample of the stream's *occurrences*: after
//! `t` elements, every position of the stream is in the reservoir with
//! probability `c/t`. That is exactly the wrong guarantee under adversarial
//! bias — an identifier injected in 90% of the stream owns ~90% of the
//! reservoir — which is why the paper's strategies sample over *distinct
//! identifiers* instead.

use crate::error::CoreError;
use crate::node_id::NodeId;
use crate::sampler::NodeSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vitter's Algorithm R over the identifier stream.
///
/// Unlike [`crate::SamplingMemory`], the reservoir intentionally allows
/// duplicates: it samples stream positions, not identifiers.
///
/// # Example
///
/// ```
/// use uns_core::{NodeId, NodeSampler, ReservoirSampler};
///
/// # fn main() -> Result<(), uns_core::CoreError> {
/// let mut sampler = ReservoirSampler::new(4, 3)?;
/// for i in 0..100u64 {
///     sampler.feed(NodeId::new(i));
/// }
/// assert_eq!(sampler.memory_contents().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReservoirSampler {
    slots: Vec<NodeId>,
    capacity: usize,
    seen: u64,
    rng: StdRng,
}

impl ReservoirSampler {
    /// Creates a reservoir of `capacity` slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Result<Self, CoreError> {
        if capacity == 0 {
            return Err(CoreError::ZeroCapacity);
        }
        Ok(Self {
            slots: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Number of stream elements read so far.
    pub fn elements_seen(&self) -> u64 {
        self.seen
    }
}

impl ReservoirSampler {
    /// The input half of `feed`: Algorithm R's slot update, no output draw.
    #[inline]
    fn absorb(&mut self, id: NodeId) {
        self.seen += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(id);
        } else {
            // Element t replaces a random slot with probability c/t.
            let position = self.rng.gen_range(0..self.seen);
            if let Ok(slot) = usize::try_from(position) {
                if slot < self.capacity {
                    self.slots[slot] = id;
                }
            }
        }
    }
}

impl NodeSampler for ReservoirSampler {
    fn feed(&mut self, id: NodeId) -> NodeId {
        self.absorb(id);
        self.slots[self.rng.gen_range(0..self.slots.len())]
    }

    /// Input-only path (see the [`NodeSampler`] contract): no output draw.
    fn ingest(&mut self, id: NodeId) {
        self.absorb(id);
    }

    fn sample(&mut self) -> Option<NodeId> {
        if self.slots.is_empty() {
            None
        } else {
            Some(self.slots[self.rng.gen_range(0..self.slots.len())])
        }
    }

    fn memory_contents(&self) -> Vec<NodeId> {
        self.slots.clone()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn strategy_name(&self) -> &'static str {
        "reservoir (Algorithm R)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zero_capacity_is_rejected() {
        assert_eq!(ReservoirSampler::new(0, 1).unwrap_err(), CoreError::ZeroCapacity);
    }

    #[test]
    fn fills_then_maintains_capacity() {
        let mut sampler = ReservoirSampler::new(5, 2).unwrap();
        assert_eq!(sampler.sample(), None);
        for i in 0..3u64 {
            sampler.feed(NodeId::new(i));
        }
        assert_eq!(sampler.memory_contents().len(), 3);
        for i in 3..1_000u64 {
            sampler.feed(NodeId::new(i));
        }
        assert_eq!(sampler.memory_contents().len(), 5);
        assert_eq!(sampler.elements_seen(), 1_000);
        assert_eq!(sampler.capacity(), 5);
    }

    #[test]
    fn occupancy_is_uniform_over_positions() {
        // After m elements, each position survives w.p. c/m: the count of
        // "early" ids (first half) in the reservoir should be ~c/2.
        let trials = 4_000;
        let m = 200u64;
        let c = 10usize;
        let mut early_total = 0u64;
        for seed in 0..trials {
            let mut sampler = ReservoirSampler::new(c, seed).unwrap();
            for i in 0..m {
                sampler.feed(NodeId::new(i));
            }
            early_total +=
                sampler.memory_contents().iter().filter(|id| id.as_u64() < m / 2).count() as u64;
        }
        let mean_early = early_total as f64 / trials as f64;
        assert!(
            (mean_early - c as f64 / 2.0).abs() < 0.2,
            "mean early occupancy {mean_early}, expected ~{}",
            c as f64 / 2.0
        );
    }

    #[test]
    fn flooding_adversary_owns_the_reservoir() {
        // The baseline's documented weakness: an id occupying 90% of the
        // stream owns ~90% of the output.
        let mut sampler = ReservoirSampler::new(20, 7).unwrap();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000u64 {
            let id = if i % 10 == 0 { 1 + i % 100 } else { 0 };
            let out = sampler.feed(NodeId::new(id));
            *counts.entry(out.as_u64()).or_insert(0) += 1;
        }
        let flood_share = *counts.get(&0).unwrap() as f64 / 50_000.0;
        assert!(flood_share > 0.8, "flooded id only got {flood_share} of outputs");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let stream: Vec<NodeId> = (0..500u64).map(|i| NodeId::new(i % 37)).collect();
        let mut a = ReservoirSampler::new(8, 42).unwrap();
        let mut b = ReservoirSampler::new(8, 42).unwrap();
        assert_eq!(a.run(stream.clone()), b.run(stream));
        assert_eq!(a.strategy_name(), "reservoir (Algorithm R)");
    }
}
