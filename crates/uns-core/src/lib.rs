#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Byzantine-robust uniform node sampling from adversarial identifier
//! streams — a full implementation of Anceaume, Busnel and Sericola,
//! *"Uniform Node Sampling Service Robust against Collusions of Malicious
//! Nodes"* (DSN 2013).
//!
//! # The problem
//!
//! Every node of a large-scale open system receives an unbounded stream of
//! node identifiers (from gossip or random walks). Malicious nodes collude
//! to bias this stream — flooding it with sybil identifiers — to keep
//! correct nodes out of each other's samples. A *node sampling service*
//! must read the stream on the fly, in small memory, and emit an output
//! stream that is **uniform** (every node sampled with probability `1/n`)
//! and **fresh** (every node keeps being sampled forever).
//!
//! # The strategies
//!
//! * [`OmniscientSampler`] — the paper's Algorithm 1. Assumes the
//!   occurrence probability `p_j` of every identifier is known; inserts `j`
//!   into the memory `Γ` with probability `a_j = min_i(p_i)/p_j`, evicting
//!   a uniformly chosen resident. Provably uniform and fresh (Theorems 3–4,
//!   Corollary 5) whatever the adversary injects.
//! * [`KnowledgeFreeSampler`] — the paper's Algorithm 3. Replaces exact
//!   knowledge with a Count-Min sketch estimate `f̂_j` and the global
//!   minimum counter `min_σ`: `a_j = min_σ/f̂_j`. Needs only
//!   `O(log(1/δ)/ε + c)` memory and approximates the omniscient output
//!   within a tunable bound.
//! * [`WeightedSampler`] — Algorithm 1 in full generality (arbitrary
//!   insertion probabilities `a_j` and removal weights `r_j`), for
//!   validating Theorem 3 beyond the paper's special case.
//! * Baselines: [`MinWiseSampler`] (Bortnikov et al.'s Brahms sampling
//!   component — converges to a uniform sample but then never changes) and
//!   [`ReservoirSampler`] (Vitter's Algorithm R — uniform over stream
//!   *occurrences*, hence arbitrarily biased by an adversary), plus the
//!   identity [`PassthroughSampler`] control.
//!
//! # Quickstart
//!
//! ```
//! use uns_core::{KnowledgeFreeSampler, NodeId, NodeSampler};
//!
//! # fn main() -> Result<(), uns_core::CoreError> {
//! // Memory of c = 10 ids, Count-Min sketch of k = 10 columns, s = 5 rows.
//! let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 42)?;
//!
//! // An adversarially biased stream: id 0 floods the channel.
//! let stream = (0..10_000u64).map(|i| NodeId::new(if i % 2 == 0 { 0 } else { i % 100 }));
//! let mut last = None;
//! for id in stream {
//!     last = Some(sampler.feed(id)); // one output sample per input element
//! }
//! assert!(last.is_some());
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod error;
pub mod knowledge_free;
pub mod memory;
pub mod node_id;
pub mod omniscient;
pub mod sampler;
pub mod weighted;

pub use baseline::minwise::{MinWiseSampler, MinWiseSamplerArray};
pub use baseline::passthrough::PassthroughSampler;
pub use baseline::reservoir::ReservoirSampler;
pub use error::CoreError;
pub use knowledge_free::{derive_estimator_seed, CoinRng, KnowledgeFreeSampler};
pub use memory::SamplingMemory;
pub use node_id::NodeId;
pub use omniscient::OmniscientSampler;
pub use sampler::NodeSampler;
pub use weighted::WeightedSampler;
