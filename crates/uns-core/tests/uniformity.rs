//! Statistical validation of the paper's Uniformity and Freshness
//! properties on adversarially biased streams.
//!
//! These tests are seeded and deterministic; thresholds carry generous
//! margins so they measure the algorithms, not the RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use uns_analysis::{kl_gain, Frequencies};
use uns_core::{
    KnowledgeFreeSampler, MinWiseSampler, NodeId, NodeSampler, OmniscientSampler,
    PassthroughSampler, ReservoirSampler,
};

/// A peak-attack stream (paper Fig. 7a): one flooded id, the rest uniform.
///
/// Returns `(stream, occurrence_probabilities)` over domain `n`.
fn peak_attack_stream(n: usize, m: usize, flood_share: f64, seed: u64) -> (Vec<NodeId>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(m);
    for _ in 0..m {
        let id = if rng.gen::<f64>() < flood_share { 0 } else { rng.gen_range(0..n as u64) };
        stream.push(NodeId::new(id));
    }
    let mut probs = vec![(1.0 - flood_share) / n as f64; n];
    probs[0] += flood_share;
    (stream, probs)
}

fn output_histogram(
    sampler: &mut dyn NodeSampler,
    stream: &[NodeId],
    domain: usize,
) -> Frequencies {
    let mut hist = Frequencies::new(domain);
    for &id in stream {
        hist.record(sampler.feed(id).as_u64());
    }
    hist
}

#[test]
fn omniscient_unbiases_a_peak_attack() {
    let n = 100;
    let (stream, probs) = peak_attack_stream(n, 150_000, 0.5, 1);
    let input = Frequencies::from_ids(n, stream.iter().map(|id| id.as_u64()));
    let mut sampler = OmniscientSampler::new(10, &probs, 2).unwrap();
    let output = output_histogram(&mut sampler, &stream, n);

    let gain = kl_gain(input.counts(), output.counts()).unwrap().unwrap();
    assert!(gain > 0.95, "omniscient gain {gain} too low");
    // The flooded id must no longer dominate: its output share should be
    // within 3x of 1/n.
    let flood_share = output.count(0) as f64 / output.total() as f64;
    assert!(flood_share < 3.0 / n as f64, "flooded id keeps {flood_share} of output");
}

#[test]
fn knowledge_free_unbiases_a_peak_attack() {
    let n = 100;
    let (stream, _) = peak_attack_stream(n, 150_000, 0.5, 3);
    let input = Frequencies::from_ids(n, stream.iter().map(|id| id.as_u64()));
    // Paper Fig. 7 settings scaled to n = 100: c = 10, k = 10, s = 5.
    let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 4).unwrap();
    let output = output_histogram(&mut sampler, &stream, n);

    let gain = kl_gain(input.counts(), output.counts()).unwrap().unwrap();
    assert!(gain > 0.8, "knowledge-free gain {gain} too low");
    let flood_share = output.count(0) as f64 / output.total() as f64;
    let input_share = input.count(0) as f64 / input.total() as f64;
    assert!(
        flood_share < input_share / 5.0,
        "knowledge-free only reduced the peak from {input_share} to {flood_share}"
    );
}

#[test]
fn adaptive_omniscient_tracks_true_omniscient() {
    let n = 80;
    let (stream, probs) = peak_attack_stream(n, 120_000, 0.4, 5);
    let input = Frequencies::from_ids(n, stream.iter().map(|id| id.as_u64()));

    let mut exact = OmniscientSampler::new(10, &probs, 6).unwrap();
    let gain_exact = kl_gain(input.counts(), output_histogram(&mut exact, &stream, n).counts())
        .unwrap()
        .unwrap();

    let mut adaptive = KnowledgeFreeSampler::adaptive_omniscient(10, 7).unwrap();
    let gain_adaptive =
        kl_gain(input.counts(), output_histogram(&mut adaptive, &stream, n).counts())
            .unwrap()
            .unwrap();

    assert!(gain_exact > 0.95);
    assert!(
        (gain_exact - gain_adaptive).abs() < 0.05,
        "adaptive ({gain_adaptive}) diverges from exact omniscient ({gain_exact})"
    );
}

#[test]
fn omniscient_output_is_chi_square_uniform() {
    // Under a *known* biased distribution the omniscient output stream must
    // pass a uniformity test over the domain.
    let n = 50;
    let (stream, probs) = peak_attack_stream(n, 200_000, 0.3, 8);
    let mut sampler = OmniscientSampler::new(15, &probs, 9).unwrap();
    // Skip the transient: let the memory reach stationarity first.
    let warmup = 30_000;
    for &id in &stream[..warmup] {
        sampler.feed(id);
    }
    let mut hist = Frequencies::new(n);
    for &id in &stream[warmup..] {
        hist.record(sampler.feed(id).as_u64());
    }
    // Successive outputs are correlated (the memory changes slowly), which
    // inflates the χ² statistic relative to i.i.d. sampling — so use a very
    // forgiving significance level and additionally check the max/min
    // output share directly.
    let p_value = hist.chi_square_uniformity_pvalue().unwrap();
    let shares: Vec<f64> = hist.counts().iter().map(|&c| c as f64 / hist.total() as f64).collect();
    let max_share = shares.iter().cloned().fold(0.0, f64::max);
    let min_share = shares.iter().cloned().fold(1.0, f64::min);
    assert!(
        p_value > 1e-6 || (max_share < 2.5 / n as f64 && min_share > 0.4 / n as f64),
        "output not uniform: p = {p_value}, shares in [{min_share}, {max_share}]"
    );
}

#[test]
fn freshness_all_ids_recur_in_output() {
    let n = 60;
    let (stream, probs) = peak_attack_stream(n, 120_000, 0.5, 10);
    let mut omniscient = OmniscientSampler::new(10, &probs, 11).unwrap();
    let mut knowledge_free = KnowledgeFreeSampler::with_count_min(10, 10, 5, 12).unwrap();
    let out_omni = Frequencies::from_ids(n, stream.iter().map(|&id| omniscient.feed(id).as_u64()));
    let out_kf =
        Frequencies::from_ids(n, stream.iter().map(|&id| knowledge_free.feed(id).as_u64()));
    assert_eq!(out_omni.support_size(), n, "omniscient starved some ids");
    assert_eq!(out_kf.support_size(), n, "knowledge-free starved some ids");
}

#[test]
fn baselines_fail_where_the_paper_strategies_succeed() {
    let n = 100;
    let (stream, _) = peak_attack_stream(n, 100_000, 0.5, 13);
    let input = Frequencies::from_ids(n, stream.iter().map(|id| id.as_u64()));

    // Reservoir: output stays dominated by the flood (gain near 0).
    let mut reservoir = ReservoirSampler::new(10, 14).unwrap();
    let out_res = output_histogram(&mut reservoir, &stream, n);
    let gain_res = kl_gain(input.counts(), out_res.counts()).unwrap().unwrap();
    assert!(gain_res < 0.5, "reservoir unexpectedly robust: gain {gain_res}");

    // Passthrough: gain exactly ~0.
    let mut pass = PassthroughSampler::new();
    let out_pass = output_histogram(&mut pass, &stream, n);
    let gain_pass = kl_gain(input.counts(), out_pass.counts()).unwrap().unwrap();
    assert!(gain_pass.abs() < 1e-9);

    // Min-wise: converges then never changes (staticity = no freshness).
    // A handful of ids may be emitted during convergence, but the second
    // half of the output stream must be a single frozen id.
    let mut minwise = MinWiseSampler::new(15);
    let outputs: Vec<NodeId> = stream.iter().map(|&id| minwise.feed(id)).collect();
    let tail: HashSet<NodeId> = outputs[outputs.len() / 2..].iter().copied().collect();
    assert_eq!(tail.len(), 1, "min-wise tail should be frozen, got {tail:?}");

    // The knowledge-free strategy beats the reservoir baseline.
    let mut kf = KnowledgeFreeSampler::with_count_min(10, 10, 5, 16).unwrap();
    let out_kf = output_histogram(&mut kf, &stream, n);
    let gain_kf = kl_gain(input.counts(), out_kf.counts()).unwrap().unwrap();
    assert!(
        gain_kf > gain_res + 0.3,
        "knowledge-free ({gain_kf}) should clearly beat reservoir ({gain_res})"
    );
}

#[test]
fn residency_probability_approaches_c_over_n() {
    // Theorem 4: in stationarity every id is in Γ with probability c/n.
    // Empirically: average residency of each id over time ≈ c/n.
    let n = 20usize;
    let c = 5usize;
    let (stream, probs) = peak_attack_stream(n, 60_000, 0.4, 17);
    let mut sampler = OmniscientSampler::new(c, &probs, 18).unwrap();
    let mut residency = vec![0u64; n];
    let mut observations = 0u64;
    for (step, &id) in stream.iter().enumerate() {
        sampler.feed(id);
        if step > 5_000 {
            for resident in sampler.memory_contents() {
                residency[resident.as_u64() as usize] += 1;
            }
            observations += 1;
        }
    }
    let expected = c as f64 / n as f64;
    for (id, &count) in residency.iter().enumerate() {
        let rate = count as f64 / observations as f64;
        assert!(
            (rate - expected).abs() < expected * 0.35,
            "id {id}: residency {rate}, expected ~{expected}"
        );
    }
}
