//! Property-based tests for the sampling strategies.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;
use uns_core::{
    KnowledgeFreeSampler, NodeId, NodeSampler, OmniscientSampler, ReservoirSampler, SamplingMemory,
};

proptest! {
    /// Γ never exceeds its capacity and keeps set semantics under any
    /// insert/replace interleaving.
    #[test]
    fn memory_respects_capacity_and_set_semantics(
        capacity in 1usize..16,
        ids in vec(0u64..64, 0..400),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut gamma = SamplingMemory::new(capacity).unwrap();
        for id in ids {
            let id = NodeId::new(id);
            if gamma.is_full() {
                gamma.replace_uniform(&mut rng, id);
            } else {
                gamma.insert(id);
            }
            prop_assert!(gamma.len() <= capacity);
            let distinct: HashSet<NodeId> = gamma.iter().copied().collect();
            prop_assert_eq!(distinct.len(), gamma.len(), "duplicate in memory");
            prop_assert!(gamma.contains(id) || gamma.is_full());
        }
    }

    /// Every output of the knowledge-free sampler is a memory resident, and
    /// the memory never exceeds c distinct ids.
    #[test]
    fn knowledge_free_outputs_are_residents(
        capacity in 1usize..12,
        width in 1usize..24,
        depth in 1usize..5,
        ids in vec(0u64..128, 1..300),
        seed in any::<u64>(),
    ) {
        let mut sampler =
            KnowledgeFreeSampler::with_count_min(capacity, width, depth, seed).unwrap();
        for id in ids {
            let out = sampler.feed(NodeId::new(id));
            let residents: HashSet<NodeId> = sampler.memory_contents().into_iter().collect();
            prop_assert!(residents.contains(&out));
            prop_assert!(residents.len() <= capacity);
        }
    }

    /// Same seed + same stream ⇒ identical output stream (determinism), for
    /// both paper strategies.
    #[test]
    fn samplers_are_deterministic(
        ids in vec(0u64..32, 1..200),
        seed in any::<u64>(),
    ) {
        let stream: Vec<NodeId> = ids.iter().copied().map(NodeId::new).collect();
        let probs = vec![1.0 / 32.0; 32];
        let mut o1 = OmniscientSampler::new(4, &probs, seed).unwrap();
        let mut o2 = OmniscientSampler::new(4, &probs, seed).unwrap();
        prop_assert_eq!(o1.run(stream.clone()), o2.run(stream.clone()));
        let mut k1 = KnowledgeFreeSampler::with_count_min(4, 8, 3, seed).unwrap();
        let mut k2 = KnowledgeFreeSampler::with_count_min(4, 8, 3, seed).unwrap();
        prop_assert_eq!(k1.run(stream.clone()), k2.run(stream));
    }

    /// The omniscient insertion probabilities always lie in (0, 1] and are
    /// inversely ordered with the occurrence probabilities.
    #[test]
    fn omniscient_insertion_probabilities_are_valid(
        raw in vec(1u32..1000, 2..32),
    ) {
        let total: f64 = raw.iter().map(|&x| x as f64).sum();
        let probs: Vec<f64> = raw.iter().map(|&x| x as f64 / total).collect();
        let sampler = OmniscientSampler::new(1, &probs, 0).unwrap();
        for i in 0..probs.len() {
            let a = sampler.insertion_probability(NodeId::new(i as u64));
            prop_assert!(a > 0.0 && a <= 1.0, "a_{} = {}", i, a);
        }
        // Inverse ordering: more frequent ⇒ lower insertion probability.
        for i in 0..probs.len() {
            for j in 0..probs.len() {
                if probs[i] > probs[j] {
                    let ai = sampler.insertion_probability(NodeId::new(i as u64));
                    let aj = sampler.insertion_probability(NodeId::new(j as u64));
                    prop_assert!(ai <= aj + 1e-12);
                }
            }
        }
    }

    /// `feed_batch` is element-wise identical to repeated `feed` under the
    /// same seed, for any stream and sampler shape (the batched entry point
    /// may amortize overhead, never change results).
    #[test]
    fn feed_batch_equals_elementwise_feed(
        capacity in 1usize..10,
        width in 1usize..20,
        depth in 1usize..5,
        ids in vec(0u64..96, 1..250),
        seed in any::<u64>(),
    ) {
        let stream: Vec<NodeId> = ids.iter().copied().map(NodeId::new).collect();
        let mut single =
            KnowledgeFreeSampler::with_count_min(capacity, width, depth, seed).unwrap();
        let expected: Vec<NodeId> = stream.iter().map(|&id| single.feed(id)).collect();
        let mut batched =
            KnowledgeFreeSampler::with_count_min(capacity, width, depth, seed).unwrap();
        let mut out = Vec::new();
        batched.feed_batch(&stream, &mut out);
        prop_assert_eq!(&out, &expected);
        prop_assert_eq!(batched.memory_contents(), single.memory_contents());
        // Splitting the stream into two batches is also equivalent.
        let mut split =
            KnowledgeFreeSampler::with_count_min(capacity, width, depth, seed).unwrap();
        let mut out2 = Vec::new();
        let mid = stream.len() / 2;
        split.feed_batch(&stream[..mid], &mut out2);
        split.feed_batch(&stream[mid..], &mut out2);
        prop_assert_eq!(out2, expected);
    }

    /// `ingest(id)` followed by `sample()` replays `feed(id)` exactly:
    /// same output and same memory state at every step (the trait-level
    /// ingest/feed contract).
    #[test]
    fn ingest_plus_sample_matches_feed(
        capacity in 1usize..10,
        ids in vec(0u64..64, 1..250),
        seed in any::<u64>(),
    ) {
        let mut fed = KnowledgeFreeSampler::with_count_min(capacity, 8, 3, seed).unwrap();
        let mut ingested = KnowledgeFreeSampler::with_count_min(capacity, 8, 3, seed).unwrap();
        for &id in &ids {
            let out = fed.feed(NodeId::new(id));
            ingested.ingest(NodeId::new(id));
            prop_assert_eq!(ingested.sample(), Some(out));
            prop_assert_eq!(ingested.memory_contents(), fed.memory_contents());
        }
    }

    /// The reservoir never grows beyond its capacity and its contents are
    /// always stream elements.
    #[test]
    fn reservoir_contents_come_from_stream(
        capacity in 1usize..10,
        ids in vec(0u64..64, 1..300),
        seed in any::<u64>(),
    ) {
        let mut sampler = ReservoirSampler::new(capacity, seed).unwrap();
        let stream_set: HashSet<u64> = ids.iter().copied().collect();
        for &id in &ids {
            sampler.feed(NodeId::new(id));
            prop_assert!(sampler.memory_contents().len() <= capacity);
        }
        for id in sampler.memory_contents() {
            prop_assert!(stream_set.contains(&id.as_u64()));
        }
    }
}

/// One step of the generator-equivalence driver below: which draw to make.
#[derive(Clone, Copy, Debug)]
enum DrawOp {
    Word,
    Float,
    Range(u64),
    Fill(usize),
}

fn draw_op() -> impl Strategy<Value = DrawOp> {
    prop_oneof![
        Just(DrawOp::Word),
        Just(DrawOp::Float),
        (1u64..1_000).prop_map(DrawOp::Range),
        // Fill lengths straddle the 64-word block: 0..=130 covers empty,
        // sub-block, exactly-one-block and multi-block requests.
        (0usize..131).prop_map(DrawOp::Fill),
    ]
}

/// Applies one draw to both generators and asserts identical results (the
/// vendored proptest shim reports case failures as `String`s).
fn assert_draw_matches<A: rand::Rng, B: rand::Rng>(
    a: &mut A,
    b: &mut B,
    op: DrawOp,
) -> Result<(), String> {
    match op {
        DrawOp::Word => prop_assert_eq!(a.next_u64(), b.next_u64()),
        DrawOp::Float => prop_assert_eq!(a.gen::<f64>(), b.gen::<f64>()),
        DrawOp::Range(span) => prop_assert_eq!(a.gen_range(0..span), b.gen_range(0..span)),
        DrawOp::Fill(len) => {
            let mut blocked = vec![0u64; len];
            let mut plain = vec![0u64; len];
            a.fill_u64(&mut blocked);
            b.fill_u64(&mut plain);
            prop_assert_eq!(blocked, plain);
        }
    }
    Ok(())
}

proptest! {
    /// BlockRng<SmallRng> is draw-order-identical to plain SmallRng under
    /// arbitrary interleavings of word draws, float draws, range draws and
    /// block fills — every block/remainder boundary the buffer can land on.
    #[test]
    fn blocked_small_rng_is_draw_order_identical_to_sequential(
        seed in any::<u64>(),
        ops in vec(draw_op(), 1..200),
    ) {
        use rand::SeedableRng;
        let mut blocked = rand::rngs::BlockRng::<rand::rngs::SmallRng>::seed_from_u64(seed);
        let mut plain = rand::rngs::SmallRng::seed_from_u64(seed);
        for op in ops {
            assert_draw_matches(&mut blocked, &mut plain, op)?;
        }
    }

    /// Same pin for the hardened generator: BlockRng<StdRng> ≡ StdRng.
    #[test]
    fn blocked_std_rng_is_draw_order_identical_to_sequential(
        seed in any::<u64>(),
        ops in vec(draw_op(), 1..120),
    ) {
        use rand::SeedableRng;
        let mut blocked = rand::rngs::BlockRng::<rand::rngs::StdRng>::seed_from_u64(seed);
        let mut plain = rand::rngs::StdRng::seed_from_u64(seed);
        for op in ops {
            assert_draw_matches(&mut blocked, &mut plain, op)?;
        }
    }

    /// Sampler-level blocked-coin pin: the default (blocked) sampler driven
    /// through batched entry points with arbitrary batch boundaries leaves
    /// memory, estimator cells and the coin-stream position bit-equal to a
    /// plain-SmallRng sampler fed element-wise.
    #[test]
    fn blocked_coin_feed_batch_is_bit_equal_to_plain_elementwise(
        capacity in 1usize..10,
        ids in vec(0u64..96, 1..600),
        cuts in vec(1usize..64, 1..12),
        seed in any::<u64>(),
    ) {
        use rand::rngs::SmallRng;
        use uns_sketch::{CountMinSketch, FrequencyEstimator};
        let mut blocked = KnowledgeFreeSampler::with_count_min(capacity, 8, 3, seed).unwrap();
        let mut plain =
            KnowledgeFreeSampler::<CountMinSketch, SmallRng>::with_count_min_rng(
                capacity, 8, 3, seed,
            )
            .unwrap();
        let stream: Vec<NodeId> = ids.iter().copied().map(NodeId::new).collect();
        let mut blocked_out = Vec::new();
        let mut rest = stream.as_slice();
        let mut cut = cuts.iter().cycle();
        while !rest.is_empty() {
            let take = (*cut.next().unwrap()).min(rest.len());
            blocked.feed_batch_admitted(&rest[..take], &mut blocked_out);
            rest = &rest[take..];
        }
        let plain_out: Vec<NodeId> = stream.iter().map(|&id| plain.feed(id)).collect();
        prop_assert_eq!(blocked_out, plain_out);
        prop_assert_eq!(blocked.memory_contents(), plain.memory_contents());
        for id in 0..96u64 {
            prop_assert_eq!(blocked.estimator().estimate(id), plain.estimator().estimate(id));
        }
        for _ in 0..16 {
            prop_assert_eq!(blocked.sample(), plain.sample());
        }
    }
}
