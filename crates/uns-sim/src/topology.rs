//! Overlay topology utilities: bootstrap views and connectivity analysis.
//!
//! The paper assumes (§III-C) that at every time `t ≥ T₀` the correct nodes
//! are *weakly connected*: ignoring edge directions, a path exists between
//! every pair of correct nodes in the view graph. A successful eclipse /
//! partitioning attack breaks exactly this property, so the simulator
//! checks it every round.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uns_core::NodeId;

/// Draws bootstrap views: every node starts knowing `view_size` uniformly
/// random *other* correct nodes (a bootstrap service, as deployed systems
/// use).
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `view_size >= n` (validated by the simulation config).
pub fn bootstrap_views(n: usize, view_size: usize, seed: u64) -> Vec<Vec<NodeId>> {
    assert!(view_size < n, "view size must leave room for distinct peers");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|me| {
            let mut view = Vec::with_capacity(view_size);
            while view.len() < view_size {
                let peer = rng.gen_range(0..n as u64);
                if peer != me as u64 && !view.contains(&NodeId::new(peer)) {
                    view.push(NodeId::new(peer));
                }
            }
            view
        })
        .collect()
}

/// Checks weak connectivity of the correct-node view graph.
///
/// `views[i]` lists the identifiers node `i` currently points to;
/// identifiers outside `0..views.len()` (sybils, departed nodes) are
/// ignored. Uses union–find over the undirected edge set.
pub fn is_weakly_connected(views: &[Vec<NodeId>]) -> bool {
    let n = views.len();
    if n <= 1 {
        return true;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for (i, view) in views.iter().enumerate() {
        for peer in view {
            if let Ok(j) = usize::try_from(peer.as_u64()) {
                if j < n {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
    }
    let root = find(&mut parent, 0);
    (1..n).all(|i| find(&mut parent, i) == root)
}

/// In-degree of every correct node in the view graph (how many correct
/// nodes point at it) — the load-balance metric of the paper's §I
/// motivation.
pub fn in_degrees(views: &[Vec<NodeId>]) -> Vec<usize> {
    let n = views.len();
    let mut degrees = vec![0usize; n];
    for view in views {
        for peer in view {
            if let Ok(j) = usize::try_from(peer.as_u64()) {
                if j < n {
                    degrees[j] += 1;
                }
            }
        }
    }
    degrees
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_views_have_right_shape() {
        let views = bootstrap_views(20, 4, 1);
        assert_eq!(views.len(), 20);
        for (me, view) in views.iter().enumerate() {
            assert_eq!(view.len(), 4);
            // No self-loops, no duplicates, all in range.
            assert!(view.iter().all(|id| id.as_u64() != me as u64));
            assert!(view.iter().all(|id| id.as_u64() < 20));
            let mut sorted = view.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
        }
        // Deterministic.
        assert_eq!(views, bootstrap_views(20, 4, 1));
        assert_ne!(views, bootstrap_views(20, 4, 2));
    }

    #[test]
    #[should_panic(expected = "view size")]
    fn bootstrap_rejects_oversized_views() {
        let _ = bootstrap_views(4, 4, 0);
    }

    #[test]
    fn connectivity_detects_partitions() {
        // 0 → 1, 2 → 3: two components.
        let views = vec![
            vec![NodeId::new(1)],
            vec![NodeId::new(0)],
            vec![NodeId::new(3)],
            vec![NodeId::new(2)],
        ];
        assert!(!is_weakly_connected(&views));
        // Bridge the components: 1 → 2.
        let views = vec![
            vec![NodeId::new(1)],
            vec![NodeId::new(2)],
            vec![NodeId::new(3)],
            vec![NodeId::new(2)],
        ];
        assert!(is_weakly_connected(&views));
    }

    #[test]
    fn connectivity_is_weak_not_strong() {
        // A directed chain 0 → 1 → 2 is weakly connected even though 2
        // cannot reach anyone.
        let views = vec![vec![NodeId::new(1)], vec![NodeId::new(2)], vec![]];
        assert!(is_weakly_connected(&views));
    }

    #[test]
    fn sybil_edges_do_not_connect() {
        // Both nodes point at a sybil only: not connected to each other.
        let sybil = NodeId::new(crate::byzantine::SYBIL_ID_BASE);
        let views = vec![vec![sybil], vec![sybil]];
        assert!(!is_weakly_connected(&views));
    }

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(is_weakly_connected(&[]));
        assert!(is_weakly_connected(&[vec![]]));
    }

    #[test]
    fn in_degrees_count_correct_edges_only() {
        let sybil = NodeId::new(crate::byzantine::SYBIL_ID_BASE);
        let views = vec![vec![NodeId::new(1), sybil], vec![NodeId::new(0)], vec![NodeId::new(0)]];
        assert_eq!(in_degrees(&views), vec![2, 1, 0]);
    }

    #[test]
    fn bootstrap_graph_is_connected_for_reasonable_sizes() {
        // With view size ≥ 2 ln n, a random digraph is connected w.h.p.
        let views = bootstrap_views(100, 10, 3);
        assert!(is_weakly_connected(&views));
    }
}
