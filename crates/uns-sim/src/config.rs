//! Simulation configuration.

use crate::byzantine::MaliciousStrategy;
use crate::error::SimError;
use uns_core::{
    KnowledgeFreeSampler, MinWiseSamplerArray, NodeSampler, PassthroughSampler, ReservoirSampler,
};

/// Which sampling strategy every correct node runs on its input stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerKind {
    /// The paper's Algorithm 3 with a Count-Min sketch of the given shape.
    KnowledgeFree {
        /// Sketch columns `k`.
        width: usize,
        /// Sketch rows `s`.
        depth: usize,
    },
    /// Algorithm 3 driven by exact frequencies (adaptive omniscient) —
    /// full-space reference behaviour.
    AdaptiveOmniscient,
    /// Vitter's Algorithm R (the vulnerable baseline).
    Reservoir,
    /// Brahms-style min-wise sampler array (converges then freezes).
    MinWiseArray,
    /// No sampling at all: the view is just the last received identifier.
    Passthrough,
}

impl SamplerKind {
    /// Instantiates a sampler of this kind with memory size `capacity`.
    ///
    /// The sampler is `Send` so correct nodes can process their input
    /// streams on worker threads (see
    /// [`SimConfigBuilder::ingest_threads`]).
    ///
    /// # Errors
    ///
    /// Propagates construction failures as [`SimError::Sampler`].
    pub fn build(
        &self,
        capacity: usize,
        seed: u64,
    ) -> Result<Box<dyn NodeSampler + Send>, SimError> {
        Ok(match *self {
            SamplerKind::KnowledgeFree { width, depth } => {
                Box::new(KnowledgeFreeSampler::with_count_min(capacity, width, depth, seed)?)
            }
            SamplerKind::AdaptiveOmniscient => {
                Box::new(KnowledgeFreeSampler::adaptive_omniscient(capacity, seed)?)
            }
            SamplerKind::Reservoir => Box::new(ReservoirSampler::new(capacity, seed)?),
            SamplerKind::MinWiseArray => Box::new(MinWiseSamplerArray::new(capacity, seed)?),
            SamplerKind::Passthrough => Box::new(PassthroughSampler::new()),
        })
    }
}

/// Full configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of correct nodes `n − ℓ`.
    pub correct_nodes: usize,
    /// Number of malicious (adversary-controlled) nodes `ℓ`.
    pub malicious_nodes: usize,
    /// View size = sampler memory size `c`.
    pub view_size: usize,
    /// Gossip partners contacted per round.
    pub fanout: usize,
    /// Rounds to simulate after churn stops (`t ≥ T₀`).
    pub rounds: usize,
    /// Warm-up rounds with churn (`t < T₀`).
    pub churn_rounds: usize,
    /// Fraction of correct nodes replaced per churn round.
    pub churn_rate: f64,
    /// Sampling strategy run by correct nodes.
    pub sampler: SamplerKind,
    /// What the malicious nodes send.
    pub attack: MaliciousStrategy,
    /// Master seed; the whole simulation is deterministic in it.
    pub seed: u64,
    /// Worker threads for the per-round sampling pass (processing every
    /// correct node's inbox through its sampling service). Each node owns
    /// its sampler and coin generator, so the result is bit-identical for
    /// any thread count; 1 (the default) keeps the pass on the round loop's
    /// thread.
    pub ingest_threads: usize,
}

impl SimConfig {
    /// Starts building a configuration with the defaults documented on each
    /// builder method.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Total population `n` (correct + malicious).
    pub fn population(&self) -> usize {
        self.correct_nodes + self.malicious_nodes
    }

    fn validate(&self) -> Result<(), SimError> {
        let fail = |reason: String| Err(SimError::InvalidConfig { reason });
        if self.correct_nodes < 2 {
            return fail(format!("need at least 2 correct nodes, got {}", self.correct_nodes));
        }
        if self.view_size == 0 {
            return fail("view size must be at least 1".into());
        }
        if self.view_size >= self.correct_nodes {
            return fail(format!(
                "view size {} must be smaller than the correct population {}",
                self.view_size, self.correct_nodes
            ));
        }
        if self.fanout == 0 {
            return fail("fanout must be at least 1".into());
        }
        if self.rounds == 0 {
            return fail("must simulate at least one round".into());
        }
        if !(0.0..=1.0).contains(&self.churn_rate) {
            return fail(format!("churn rate {} must be in [0, 1]", self.churn_rate));
        }
        if self.ingest_threads == 0 {
            return fail("ingest threads must be at least 1".into());
        }
        Ok(())
    }
}

/// Builder for [`SimConfig`].
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    correct_nodes: usize,
    malicious_nodes: usize,
    view_size: usize,
    fanout: usize,
    rounds: usize,
    churn_rounds: usize,
    churn_rate: f64,
    sampler: SamplerKind,
    attack: MaliciousStrategy,
    seed: u64,
    ingest_threads: usize,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self {
            correct_nodes: 100,
            malicious_nodes: 0,
            view_size: 10,
            fanout: 3,
            rounds: 50,
            churn_rounds: 0,
            churn_rate: 0.0,
            sampler: SamplerKind::KnowledgeFree { width: 10, depth: 5 },
            attack: MaliciousStrategy::default(),
            seed: 0,
            ingest_threads: 1,
        }
    }
}

impl SimConfigBuilder {
    /// Number of correct nodes (default 100).
    #[must_use]
    pub fn correct_nodes(mut self, n: usize) -> Self {
        self.correct_nodes = n;
        self
    }

    /// Number of malicious nodes (default 0).
    #[must_use]
    pub fn malicious_nodes(mut self, l: usize) -> Self {
        self.malicious_nodes = l;
        self
    }

    /// View size = sampler memory `c` (default 10).
    #[must_use]
    pub fn view_size(mut self, c: usize) -> Self {
        self.view_size = c;
        self
    }

    /// Gossip fanout per round (default 3).
    #[must_use]
    pub fn fanout(mut self, f: usize) -> Self {
        self.fanout = f;
        self
    }

    /// Stable rounds to simulate (default 50).
    #[must_use]
    pub fn rounds(mut self, r: usize) -> Self {
        self.rounds = r;
        self
    }

    /// Churn warm-up rounds before `T₀` (default 0).
    #[must_use]
    pub fn churn_rounds(mut self, r: usize) -> Self {
        self.churn_rounds = r;
        self
    }

    /// Fraction of correct nodes replaced per churn round (default 0).
    #[must_use]
    pub fn churn_rate(mut self, rate: f64) -> Self {
        self.churn_rate = rate;
        self
    }

    /// Sampling strategy (default knowledge-free, k = 10, s = 5).
    #[must_use]
    pub fn sampler(mut self, kind: SamplerKind) -> Self {
        self.sampler = kind;
        self
    }

    /// Malicious strategy (default: flooding, see
    /// [`MaliciousStrategy::default`]).
    #[must_use]
    pub fn attack(mut self, attack: MaliciousStrategy) -> Self {
        self.attack = attack;
        self
    }

    /// Master seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the per-round sampling pass (default 1). Metrics
    /// are bit-identical for any value — each node's sampler owns its coin
    /// generator — so this is purely a wall-clock knob for large overlays.
    #[must_use]
    pub fn ingest_threads(mut self, threads: usize) -> Self {
        self.ingest_threads = threads;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn build(self) -> Result<SimConfig, SimError> {
        let config = SimConfig {
            correct_nodes: self.correct_nodes,
            malicious_nodes: self.malicious_nodes,
            view_size: self.view_size,
            fanout: self.fanout,
            rounds: self.rounds,
            churn_rounds: self.churn_rounds,
            churn_rate: self.churn_rate,
            sampler: self.sampler,
            attack: self.attack,
            seed: self.seed,
            ingest_threads: self.ingest_threads,
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_is_valid() {
        let config = SimConfig::builder().build().unwrap();
        assert_eq!(config.correct_nodes, 100);
        assert_eq!(config.population(), 100);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(SimConfig::builder().correct_nodes(1).build().is_err());
        assert!(SimConfig::builder().view_size(0).build().is_err());
        assert!(SimConfig::builder().correct_nodes(10).view_size(10).build().is_err());
        assert!(SimConfig::builder().fanout(0).build().is_err());
        assert!(SimConfig::builder().rounds(0).build().is_err());
        assert!(SimConfig::builder().churn_rate(1.5).build().is_err());
        assert!(SimConfig::builder().churn_rate(-0.1).build().is_err());
        assert!(SimConfig::builder().ingest_threads(0).build().is_err());
    }

    #[test]
    fn all_sampler_kinds_build() {
        for kind in [
            SamplerKind::KnowledgeFree { width: 8, depth: 3 },
            SamplerKind::AdaptiveOmniscient,
            SamplerKind::Reservoir,
            SamplerKind::MinWiseArray,
            SamplerKind::Passthrough,
        ] {
            let sampler = kind.build(5, 1).unwrap();
            assert!(!sampler.strategy_name().is_empty());
        }
    }

    #[test]
    fn sampler_construction_failure_is_reported() {
        let kind = SamplerKind::KnowledgeFree { width: 0, depth: 3 };
        assert!(matches!(kind.build(5, 1), Err(SimError::Sampler(_))));
        assert!(matches!(SamplerKind::Reservoir.build(0, 1), Err(SimError::Sampler(_))));
    }

    #[test]
    fn population_counts_both_sides() {
        let config = SimConfig::builder().correct_nodes(40).malicious_nodes(10).build().unwrap();
        assert_eq!(config.population(), 50);
    }
}
