//! Correct nodes: the sampling service embedded in an overlay member.

use crate::byzantine::is_malicious_id;
use uns_core::{NodeId, NodeSampler};

/// A correct overlay node: a sampling service plus the bookkeeping the
/// simulator needs.
///
/// The node's *view* (its gossip neighbourhood) is the current content of
/// its sampler memory — the architecture of the paper's §I, where the
/// sampling service feeds epidemic protocols with peers.
pub struct CorrectNode {
    id: NodeId,
    /// `Send` so the simulator's sampling pass can run nodes on worker
    /// threads (each node owns its sampler and coin generator).
    sampler: Box<dyn NodeSampler + Send>,
    /// Identifiers received this round, processed at the round boundary.
    inbox: Vec<NodeId>,
    /// Count of output-stream emissions per correct identifier; sybil
    /// outputs are tallied separately.
    output_correct: Vec<u64>,
    output_sybil: u64,
    /// Total identifiers read from the input stream.
    received: u64,
    /// How many received identifiers were adversarial.
    received_sybil: u64,
}

impl CorrectNode {
    /// Creates a node with the given identifier and sampling strategy;
    /// `correct_population` sizes the per-identifier output tally.
    pub fn new(
        id: NodeId,
        sampler: Box<dyn NodeSampler + Send>,
        correct_population: usize,
    ) -> Self {
        Self {
            id,
            sampler,
            inbox: Vec::new(),
            output_correct: vec![0; correct_population],
            output_sybil: 0,
            received: 0,
            received_sybil: 0,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Queues an identifier for the next processing step (a gossip message
    /// arriving on the input stream).
    pub fn deliver(&mut self, id: NodeId) {
        self.inbox.push(id);
    }

    /// Number of identifiers waiting in the inbox.
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Processes the whole inbox through the sampling service, recording
    /// output-stream statistics.
    pub fn process_inbox(&mut self) {
        let inbox = std::mem::take(&mut self.inbox);
        for id in inbox {
            self.received += 1;
            if is_malicious_id(id) {
                self.received_sybil += 1;
            }
            let out = self.sampler.feed(id);
            if is_malicious_id(out) {
                self.output_sybil += 1;
            } else if let Some(slot) = self.output_correct.get_mut(out.as_u64() as usize) {
                *slot += 1;
            }
        }
    }

    /// The node's current view: the sampler memory contents.
    pub fn view(&self) -> Vec<NodeId> {
        self.sampler.memory_contents()
    }

    /// Per-correct-identifier output counts (index = identifier value).
    pub fn output_correct_counts(&self) -> &[u64] {
        &self.output_correct
    }

    /// Number of sybil identifiers the sampler emitted.
    pub fn output_sybil_count(&self) -> u64 {
        self.output_sybil
    }

    /// Total identifiers read and how many of them were adversarial.
    pub fn received_counts(&self) -> (u64, u64) {
        (self.received, self.received_sybil)
    }

    /// Name of the sampling strategy this node runs.
    pub fn strategy_name(&self) -> &'static str {
        self.sampler.strategy_name()
    }
}

impl std::fmt::Debug for CorrectNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorrectNode")
            .field("id", &self.id)
            .field("strategy", &self.strategy_name())
            .field("received", &self.received)
            .field("inbox", &self.inbox.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::SYBIL_ID_BASE;
    use uns_core::PassthroughSampler;

    fn test_node(population: usize) -> CorrectNode {
        CorrectNode::new(NodeId::new(0), Box::new(PassthroughSampler::new()), population)
    }

    #[test]
    fn inbox_is_processed_and_cleared() {
        let mut node = test_node(4);
        node.deliver(NodeId::new(1));
        node.deliver(NodeId::new(2));
        assert_eq!(node.inbox_len(), 2);
        node.process_inbox();
        assert_eq!(node.inbox_len(), 0);
        assert_eq!(node.received_counts(), (2, 0));
        assert_eq!(node.output_correct_counts(), &[0, 1, 1, 0]);
    }

    #[test]
    fn sybil_traffic_is_tallied_separately() {
        let mut node = test_node(4);
        node.deliver(NodeId::new(SYBIL_ID_BASE + 5));
        node.deliver(NodeId::new(3));
        node.process_inbox();
        assert_eq!(node.received_counts(), (2, 1));
        assert_eq!(node.output_sybil_count(), 1);
        assert_eq!(node.output_correct_counts()[3], 1);
    }

    #[test]
    fn view_reflects_sampler_memory() {
        let mut node = test_node(4);
        assert!(node.view().is_empty());
        node.deliver(NodeId::new(2));
        node.process_inbox();
        assert_eq!(node.view(), vec![NodeId::new(2)]);
        assert_eq!(node.strategy_name(), "passthrough");
        assert_eq!(node.id(), NodeId::new(0));
    }

    #[test]
    fn debug_output_is_nonempty() {
        let node = test_node(2);
        assert!(format!("{node:?}").contains("CorrectNode"));
    }
}
