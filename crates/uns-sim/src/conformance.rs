//! Adversarial conformance scenarios and statistical uniformity
//! measurement.
//!
//! The paper's headline claim (Theorem/§IV, measured in §VI) is that the
//! knowledge-free sampler's output stays ε-close to a **uniform** sample
//! over the node population *even when colluding malicious nodes bias the
//! input stream*. The rest of the test suite pins bit-exactness — every
//! execution path produces identical bytes — but bit-equal to the
//! sequential sampler is vacuous if the sequential sampler itself were
//! biased. This module supplies the missing half: a **scenario matrix**
//! of adversarial input streams and the measurement machinery that turns a
//! sampler's output stream into a pass/fail uniformity verdict.
//!
//! # The scenario matrix
//!
//! [`Scenario::matrix`] builds six deterministic, seed-reproducible
//! workloads over a fixed population:
//!
//! | scenario | adversary |
//! |---|---|
//! | [`Uniform`](ScenarioKind::Uniform) | none (control) |
//! | [`Zipf`](ScenarioKind::Zipf) | skewed honest traffic (α = 0.9) |
//! | [`TargetedFlooding`](ScenarioKind::TargetedFlooding) | the paper's Fig. 7b targeted + flooding mixture |
//! | [`Sybil`](ScenarioKind::Sybil) | §V sybil injection: `n/4` purchased identifiers holding ≈ half the stream |
//! | [`AdaptiveFlooding`](ScenarioKind::AdaptiveFlooding) | [`crate::byzantine::AdaptiveFlooder`] closed-loop: observes a probe sampler's outputs and retargets toward admitted (under-estimated) sybils |
//! | [`Churn`](ScenarioKind::Churn) | [`crate::byzantine::ChurnEngine`] joins/leaves until `T₀` (§III-C), stable afterwards |
//!
//! Each synthesized stream carries its measurement protocol: the
//! *population* (histogram domain — sybil identifiers are population
//! members too: the paper's guarantee is uniformity over all distinct
//! identifiers in the stream, which is exactly what makes flooding
//! unprofitable), which identifiers count toward the verdict (under churn,
//! only those alive after `T₀`), and from which stream position outputs
//! are measured (skipping the warm-up where `Γ` is still filling).
//!
//! # Why outputs are *thinned* before the χ² test
//!
//! Algorithm 3 draws each output uniformly from the current memory `Γ`, so
//! **consecutive outputs are correlated** (the same `c` residents answer
//! many draws in a row). A χ² test over every output would see that
//! correlation as variance inflation and reject even a perfectly unbiased
//! sampler. [`measure_uniformity`] therefore samples every `stride`-th
//! output with `stride` well above the expected residency time; the paper's
//! per-`t` marginal `P{S(t) = j} = 1/n` is exactly what survives thinning.
//! The negative control (a pass-through "sampler" under targeted flooding)
//! stays wildly non-uniform under the same thinning, so the procedure
//! keeps its discriminating power — `tests/conformance.rs` pins both
//! directions.

use crate::byzantine::{AdaptiveFlooder, ChurnEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uns_analysis::{chi_square_uniformity_pvalue, kl_vs_uniform, normalize, total_variation};
use uns_core::{KnowledgeFreeSampler, NodeId, NodeSampler};
use uns_streams::adversary::targeted_flooding_distribution;
use uns_streams::{IdDistribution, IdStream, SybilInjector};

/// The six adversarial workload shapes of the conformance matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Honest uniform traffic (the no-adversary control).
    Uniform,
    /// Skewed honest traffic: Zipf(α = 0.9) popularity.
    Zipf,
    /// The paper's Fig. 7b targeted + flooding attack distribution.
    TargetedFlooding,
    /// §V sybil injection: `domain/4` distinct sybils holding ≈ half the
    /// stream, uniformly interleaved.
    Sybil,
    /// Closed-loop adaptive flooding: the attacker observes a probe
    /// sampler's outputs and concentrates on admitted sybils.
    AdaptiveFlooding,
    /// Honest churn until `T₀` (joins/leaves), stable population after.
    Churn,
}

impl ScenarioKind {
    /// Stable human-readable name (report keys, CI logs).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Uniform => "uniform",
            ScenarioKind::Zipf => "zipf",
            ScenarioKind::TargetedFlooding => "targeted-flooding",
            ScenarioKind::Sybil => "sybil",
            ScenarioKind::AdaptiveFlooding => "adaptive-flooding",
            ScenarioKind::Churn => "churn",
        }
    }

    /// Thinning-stride multiplier for this scenario relative to the
    /// harness base stride. Churn doubles it: post-`T₀` memory turnover is
    /// floor-anchored and therefore slower, so samples must sit further
    /// apart to stay nearly independent (see [`measure_uniformity`]).
    pub fn stride_factor(self) -> usize {
        match self {
            ScenarioKind::Churn => 2,
            _ => 1,
        }
    }

    /// Seed-domain separator so two scenarios built from the same trial
    /// seed never share coins.
    fn seed_domain(self) -> u64 {
        match self {
            ScenarioKind::Uniform => 0x5eed_0001,
            ScenarioKind::Zipf => 0x5eed_0002,
            ScenarioKind::TargetedFlooding => 0x5eed_0003,
            ScenarioKind::Sybil => 0x5eed_0004,
            ScenarioKind::AdaptiveFlooding => 0x5eed_0005,
            ScenarioKind::Churn => 0x5eed_0006,
        }
    }
}

/// One cell of the conformance matrix: a workload shape over a population
/// of `domain` honest identifiers and a stream of ≈ `len` elements.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Workload shape.
    pub kind: ScenarioKind,
    /// Honest population size `n` (sybil scenarios extend the population
    /// past it; see [`ScenarioStream::population`]).
    pub domain: usize,
    /// Target stream length `m`. Most scenarios synthesize within a few
    /// elements of it (schedules don't always divide evenly); **churn
    /// synthesizes `2·len` elements** — it measures only the core
    /// population over a floor-anchored (slower-turnover) tail, so it
    /// carries a doubled measurement budget (see
    /// [`Scenario::synthesize`]'s churn arm and
    /// [`ScenarioKind::stride_factor`]).
    pub len: usize,
}

/// Distinct sybil identifiers the sybil/adaptive scenarios purchase.
fn sybil_effort(domain: usize) -> usize {
    (domain / 4).max(1)
}

impl Scenario {
    /// The full six-scenario matrix at the given size.
    pub fn matrix(domain: usize, len: usize) -> Vec<Scenario> {
        [
            ScenarioKind::Uniform,
            ScenarioKind::Zipf,
            ScenarioKind::TargetedFlooding,
            ScenarioKind::Sybil,
            ScenarioKind::AdaptiveFlooding,
            ScenarioKind::Churn,
        ]
        .into_iter()
        .map(|kind| Scenario { kind, domain, len })
        .collect()
    }

    /// Synthesizes the scenario's input stream. Deterministic: the same
    /// `(scenario, seed)` yields the same stream on every platform (all
    /// coins come from ChaCha12 `StdRng`; the adaptive scenario's feedback
    /// loop runs a fixed-seed probe sampler).
    pub fn synthesize(&self, seed: u64) -> ScenarioStream {
        let seed = seed ^ self.kind.seed_domain();
        let domain = self.domain.max(2);
        let len = self.len.max(64);
        match self.kind {
            ScenarioKind::Uniform => {
                let mut rng = StdRng::seed_from_u64(seed);
                let ids = (0..len).map(|_| NodeId::new(rng.gen_range(0..domain as u64))).collect();
                ScenarioStream::full_population(ids, domain, len / 5)
            }
            ScenarioKind::Zipf => {
                let dist = IdDistribution::zipf(domain, 0.9).expect("domain >= 2");
                let ids = IdStream::new(dist, seed).take_vec(len);
                ScenarioStream::full_population(ids, domain, len / 5)
            }
            ScenarioKind::TargetedFlooding => {
                let dist = targeted_flooding_distribution(domain).expect("domain >= 2");
                let ids = IdStream::new(dist, seed).take_vec(len);
                ScenarioStream::full_population(ids, domain, len / 5)
            }
            ScenarioKind::Sybil => {
                let distinct = sybil_effort(domain);
                let honest_len = len / 2;
                let repetitions = (len - honest_len) / distinct;
                let mut rng = StdRng::seed_from_u64(seed);
                let honest: Vec<NodeId> =
                    (0..honest_len).map(|_| NodeId::new(rng.gen_range(0..domain as u64))).collect();
                let injector = SybilInjector::new(domain as u64, distinct, repetitions.max(1));
                let ids = injector.inject(&honest, seed ^ 1);
                let measure_from = ids.len() / 5;
                ScenarioStream::full_population(ids, domain + distinct, measure_from)
            }
            ScenarioKind::AdaptiveFlooding => self.synthesize_adaptive(seed, domain, len),
            ScenarioKind::Churn => self.synthesize_churn(seed, domain, len),
        }
    }

    /// The closed-loop adaptive scenario: rounds of mixed honest/attack
    /// traffic, where the attacker observes the outputs a probe sampler
    /// (the paper's c = 10, k = 10, s = 5 configuration) produced for the
    /// *previous* round — exactly what a real adversary gossiping with its
    /// victims sees — and retargets.
    fn synthesize_adaptive(&self, seed: u64, domain: usize, len: usize) -> ScenarioStream {
        const ROUNDS: usize = 48;
        let distinct = sybil_effort(domain);
        let round_len = (len / ROUNDS).max(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flooder = AdaptiveFlooder::new(domain as u64, distinct, round_len / 2, seed ^ 2);
        let mut probe =
            KnowledgeFreeSampler::with_count_min(10, 10, 5, seed ^ 3).expect("static config");
        let mut ids: Vec<NodeId> = Vec::with_capacity(ROUNDS * round_len);
        let mut probe_out = Vec::new();
        for _ in 0..ROUNDS {
            let mut round: Vec<NodeId> = (0..round_len - round_len / 2)
                .map(|_| NodeId::new(rng.gen_range(0..domain as u64)))
                .collect();
            round.extend(flooder.emit());
            // Fisher–Yates so attack traffic interleaves with honest.
            for i in (1..round.len()).rev() {
                let j = rng.gen_range(0..=i as u64) as usize;
                round.swap(i, j);
            }
            probe_out.clear();
            probe.feed_batch(&round, &mut probe_out);
            flooder.observe_outputs(&probe_out);
            ids.extend_from_slice(&round);
        }
        let measure_from = ids.len() / 5;
        ScenarioStream::full_population(ids, domain + distinct, measure_from)
    }

    /// The churn scenario: a stable warm-up, a *replacement-churn* window
    /// ([`ChurnEngine::step_replacement`]: veterans leave for good, fresh
    /// identifiers join) between `0.4·len` and `T₀ = len/2`, stability
    /// afterwards. Replacement churn is load-bearing twice over: the long
    /// warm-up means every leaver froze a substantial occurrence count,
    /// and one-interval lifetimes mean no identifier ever freezes a *tiny*
    /// one — so the sampling floor `min_σ`, which an accurate estimator
    /// anchors at the least-counted identifier ever seen, stays high
    /// enough that post-`T₀` admissions keep `Γ` turning over. (With
    /// revolving-door churn from stream inception, a briefly-alive id
    /// anchors the floor near zero and Algorithm 3's freshness starves —
    /// a genuine property the harness measured, not an artifact; see the
    /// README's conformance section.)
    fn synthesize_churn(&self, seed: u64, domain: usize, len: usize) -> ScenarioStream {
        const CHURN_STEPS: usize = 8;
        // Churn gets a doubled measurement budget: only the *core*
        // population is measured (a fraction of the domain), and the
        // post-churn turnover rate is floor-anchored (slower than the
        // full-population scenarios), so both the tail and the thinning
        // stride ([`ScenarioKind::stride_factor`]) are stretched to keep
        // the χ² test honest (enough nearly-independent samples per bin).
        let len = 2 * len;
        let initially_alive = (3 * domain / 4).max(1);
        // The fresh-id pool is the remaining quarter; spend it exactly.
        let churn_batch = ((domain - initially_alive) / CHURN_STEPS).max(1);
        let mut engine = ChurnEngine::new(domain, initially_alive, seed ^ 4);
        let churn_from = 2 * len / 5;
        let t0 = len / 2;
        let step_every = ((t0 - churn_from) / CHURN_STEPS).max(1);
        let mut ids = Vec::with_capacity(len);
        for position in 0..len {
            if (churn_from..t0).contains(&position)
                && (position - churn_from) % step_every == step_every - 1
            {
                engine.step_replacement(churn_batch, churn_batch);
            }
            ids.push(engine.sample_alive());
        }
        // Verdict protocol: uniformity is asserted over the *core*
        // population (full, gap-free histories — the ids a stationary
        // uniformity claim is about). Transient survivors are ignored: an
        // accurate estimator legitimately over-admits an id whose
        // cumulative frequency is still catching up (freshness, not bias).
        // Departed ids are the leakage class, bounded separately.
        let measured = engine.core_flags();
        let alive = engine.alive_flags().to_vec();
        ScenarioStream { ids, population: domain, measure_from: t0 + len / 8, measured, alive }
    }
}

/// A synthesized conformance stream plus its measurement protocol.
#[derive(Clone, Debug)]
pub struct ScenarioStream {
    /// The input stream fed (identically) to every execution path.
    pub ids: Vec<NodeId>,
    /// Histogram domain: every stream identifier is `< population`.
    pub population: usize,
    /// First stream position whose output draw counts toward the verdict
    /// (everything before is warm-up / pre-`T₀` churn).
    pub measure_from: usize,
    /// Which identifiers count toward the uniformity verdict, indexed by
    /// identifier. All-true except under churn, where only the *core*
    /// population (alive throughout, no departure gap) is measured.
    pub measured: Vec<bool>,
    /// Which identifiers are part of the population at stream end. An
    /// unmeasured-but-alive id (a churn transient survivor) is *ignored*
    /// by the verdict; an unmeasured-and-dead id counts as leakage
    /// ([`UniformityReport::leaked_share`]).
    pub alive: Vec<bool>,
}

impl ScenarioStream {
    fn full_population(ids: Vec<NodeId>, population: usize, measure_from: usize) -> Self {
        Self {
            ids,
            population,
            measure_from,
            measured: vec![true; population],
            alive: vec![true; population],
        }
    }

    /// Number of identifiers counting toward the uniformity verdict.
    pub fn measured_count(&self) -> usize {
        self.measured.iter().filter(|&&m| m).count()
    }
}

/// The statistical verdict on one output stream.
#[derive(Clone, Copy, Debug)]
pub struct UniformityReport {
    /// Thinned output samples that entered the histogram.
    pub samples: u64,
    /// χ² uniformity p-value over the measured identifiers.
    pub p_value: f64,
    /// Total-variation distance between the empirical output distribution
    /// and uniform over the measured identifiers.
    pub tv: f64,
    /// KL divergence `D(output ‖ uniform)` in nats.
    pub kl: f64,
    /// Share of thinned tail outputs falling on *departed* identifiers
    /// (dead churn ids still lingering in `Γ`); 0 for full-population
    /// scenarios. Outputs on alive-but-unmeasured ids (churn transients)
    /// are ignored entirely — neither histogram nor leakage.
    pub leaked_share: f64,
}

/// Measures a sampler's output stream against the scenario's uniformity
/// protocol: thin the tail (`outputs[measure_from..]`, every `stride`-th
/// draw — see the module docs for why thinning is load-bearing), histogram
/// over the measured identifiers, and compute χ²-p/TV/KL against uniform.
///
/// `outputs` must hold one output per stream element (the `feed` /
/// `pipeline_feed` / service-FeedBatch contract).
///
/// # Panics
///
/// Panics if `outputs` is shorter than the stream, if `stride == 0`, or if
/// the thinned tail is empty — all harness-configuration bugs, not
/// data-dependent conditions.
pub fn measure_uniformity(
    stream: &ScenarioStream,
    outputs: &[NodeId],
    stride: usize,
) -> UniformityReport {
    assert!(stride > 0, "stride must be positive");
    assert!(
        outputs.len() >= stream.ids.len(),
        "need one output per stream element ({} < {})",
        outputs.len(),
        stream.ids.len()
    );
    // Compact the measured identifiers into dense histogram bins.
    let mut bin_of: Vec<Option<usize>> = Vec::with_capacity(stream.population);
    let mut bins = 0usize;
    for &measured in &stream.measured {
        bin_of.push(if measured {
            bins += 1;
            Some(bins - 1)
        } else {
            None
        });
    }
    assert!(bins > 0, "scenario measures at least one identifier");

    let mut counts = vec![0u64; bins];
    let mut leaked = 0u64;
    let mut ignored = 0u64;
    let mut samples = 0u64;
    let mut position = stream.measure_from;
    while position < stream.ids.len() {
        let id = outputs[position].as_u64();
        let idx = usize::try_from(id).ok();
        match idx.and_then(|i| bin_of.get(i).copied().flatten()) {
            Some(bin) => {
                counts[bin] += 1;
                samples += 1;
            }
            None if idx.and_then(|i| stream.alive.get(i)).copied().unwrap_or(false) => {
                ignored += 1; // alive but unmeasured: churn transient
            }
            None => leaked += 1,
        }
        position += stride;
    }
    assert!(samples > 0, "thinned tail is empty; shrink the stride or grow the stream");

    let p_value = if bins > 1 {
        chi_square_uniformity_pvalue(&counts).expect("non-empty counts")
    } else {
        1.0
    };
    let empirical = normalize(&counts).expect("samples > 0");
    let uniform = vec![1.0 / bins as f64; bins];
    let tv = total_variation(&empirical, &uniform).expect("equal lengths");
    let kl = kl_vs_uniform(&counts).expect("non-empty counts");
    let leaked_share = leaked as f64 / (samples + ignored + leaked) as f64;
    UniformityReport { samples, p_value, tv, kl, leaked_share }
}

/// Bonferroni-style multi-trial aggregation: the matrix passes a cell when
/// every trial's p-value clears `alpha / trials` (a min-p union bound) —
/// with fixed seeds this is fully deterministic, the correction just keeps
/// the *chosen* thresholds honest about the number of looks taken.
pub fn min_p_clears(p_values: &[f64], alpha: f64) -> bool {
    !p_values.is_empty() && p_values.iter().all(|&p| p >= alpha / p_values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: usize = 120;
    const LEN: usize = 12_000;

    #[test]
    fn matrix_has_six_distinct_scenarios() {
        let matrix = Scenario::matrix(DOMAIN, LEN);
        assert_eq!(matrix.len(), 6);
        let names: std::collections::HashSet<&str> = matrix.iter().map(|s| s.kind.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn synthesis_is_deterministic_seed_for_seed() {
        for scenario in Scenario::matrix(DOMAIN, LEN) {
            let a = scenario.synthesize(9);
            let b = scenario.synthesize(9);
            assert_eq!(a.ids, b.ids, "{} not deterministic", scenario.kind.name());
            assert_eq!(a.measured, b.measured);
            assert_eq!(a.measure_from, b.measure_from);
            let c = scenario.synthesize(10);
            assert_ne!(a.ids, c.ids, "{} ignores its seed", scenario.kind.name());
        }
    }

    #[test]
    fn every_stream_id_is_inside_the_population() {
        for scenario in Scenario::matrix(DOMAIN, LEN) {
            let stream = scenario.synthesize(3);
            assert!(!stream.ids.is_empty());
            assert!(stream.measure_from < stream.ids.len());
            assert_eq!(stream.measured.len(), stream.population);
            assert!(
                stream.ids.iter().all(|id| (id.as_u64() as usize) < stream.population),
                "{} leaks ids past its population",
                scenario.kind.name()
            );
        }
    }

    #[test]
    fn sybil_scenarios_extend_the_population_with_attack_ids() {
        for kind in [ScenarioKind::Sybil, ScenarioKind::AdaptiveFlooding] {
            let stream = Scenario { kind, domain: DOMAIN, len: LEN }.synthesize(5);
            assert_eq!(stream.population, DOMAIN + sybil_effort(DOMAIN));
            let attack = stream.ids.iter().filter(|id| id.as_u64() >= DOMAIN as u64).count();
            let share = attack as f64 / stream.ids.len() as f64;
            assert!(
                (0.3..0.7).contains(&share),
                "{}: attack share {share} far from the intended half",
                kind.name()
            );
        }
    }

    #[test]
    fn churn_measures_only_the_surviving_population() {
        let stream = Scenario { kind: ScenarioKind::Churn, domain: DOMAIN, len: LEN }.synthesize(7);
        assert_eq!(stream.population, DOMAIN);
        let core = stream.measured_count();
        assert!((1..DOMAIN).contains(&core), "{core} core ids");
        // Core ⊆ alive, and some alive ids are transients (not core).
        for (idx, &measured) in stream.measured.iter().enumerate() {
            assert!(!measured || stream.alive[idx], "core id {idx} not alive");
        }
        assert!(core < stream.alive.iter().filter(|&&a| a).count(), "no transient survivors");
        // The tail (post-T₀) only contains ids alive at the end.
        for &id in &stream.ids[stream.ids.len() / 2 + 1..] {
            assert!(stream.alive[id.as_u64() as usize], "departed id {id} in the stable tail");
        }
        // The warm-up contains at least one identifier that later departed.
        let head_has_departed =
            stream.ids[..stream.ids.len() / 2].iter().any(|id| !stream.alive[id.as_u64() as usize]);
        assert!(head_has_departed, "churn never removed an emitting identifier");
    }

    #[test]
    fn measure_uniformity_separates_uniform_from_flooded_outputs() {
        let scenario = Scenario { kind: ScenarioKind::Uniform, domain: DOMAIN, len: LEN };
        let stream = scenario.synthesize(11);
        // A perfectly uniform output stream passes with a healthy p-value.
        let mut rng = StdRng::seed_from_u64(99);
        let uniform_out: Vec<NodeId> =
            (0..stream.ids.len()).map(|_| NodeId::new(rng.gen_range(0..DOMAIN as u64))).collect();
        let good = measure_uniformity(&stream, &uniform_out, 4);
        assert!(good.p_value > 1e-4, "uniform outputs rejected: p = {}", good.p_value);
        assert!(good.tv < 0.25, "tv = {}", good.tv);
        assert_eq!(good.leaked_share, 0.0);
        // A flooded output stream (90% one identifier) fails decisively.
        let flooded_out: Vec<NodeId> = (0..stream.ids.len())
            .map(|i| {
                if i % 10 == 0 {
                    NodeId::new(rng.gen_range(0..DOMAIN as u64))
                } else {
                    NodeId::new(17)
                }
            })
            .collect();
        let bad = measure_uniformity(&stream, &flooded_out, 4);
        assert!(bad.p_value < 1e-12, "flooded outputs accepted: p = {}", bad.p_value);
        assert!(bad.tv > 0.5);
        assert!(bad.kl > good.kl);
    }

    #[test]
    fn min_p_aggregation_applies_the_union_bound() {
        assert!(min_p_clears(&[0.5, 0.2, 0.9], 0.05));
        // 0.02 clears alpha/1 = 0.05? No — 0.02 < 0.05 fails at one trial…
        assert!(!min_p_clears(&[0.02], 0.05));
        // …but clears alpha/3 ≈ 0.0167 in a three-trial family.
        assert!(min_p_clears(&[0.02, 0.5, 0.9], 0.05));
        assert!(!min_p_clears(&[], 0.05));
        assert!(!min_p_clears(&[0.5, 1e-9], 0.05));
    }
}
