//! The synchronous (cycle-based) overlay simulation loop.
//!
//! Every round:
//!
//! 1. each correct node pushes its own identifier plus its current view to
//!    `fanout` partners drawn from its view (push gossip); messages
//!    addressed to sybil identifiers are absorbed by the adversary;
//! 2. each malicious node pushes its attack batch to every correct node
//!    (the paper's strong adversary can tamper with any input stream);
//! 3. every correct node runs its inbox through its sampling service —
//!    the service's memory `Γ` *is* the node's next view;
//! 4. during the first `churn_rounds` (before `T₀`), a fraction of correct
//!    nodes is replaced (fresh sampler state, same slot), after which the
//!    population is stable as the paper assumes (§III-C);
//! 5. weak connectivity of the correct view graph is recorded.

use crate::byzantine::{is_malicious_id, MaliciousNode};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::SimMetrics;
use crate::node::CorrectNode;
use crate::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uns_core::NodeId;

/// A running overlay simulation (see the crate docs for an example).
pub struct Simulation {
    config: SimConfig,
    nodes: Vec<CorrectNode>,
    malicious: Vec<MaliciousNode>,
    malicious_ids: Vec<NodeId>,
    rng: StdRng,
    round: usize,
    connectivity_history: Vec<bool>,
    total_messages: u64,
}

impl Simulation {
    /// Builds the simulation: instantiates samplers, seeds bootstrap views.
    ///
    /// # Errors
    ///
    /// Propagates configuration and sampler construction failures.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        let mut nodes = Vec::with_capacity(config.correct_nodes);
        for i in 0..config.correct_nodes {
            let sampler_seed = config.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let sampler = config.sampler.build(config.view_size, sampler_seed)?;
            nodes.push(CorrectNode::new(NodeId::new(i as u64), sampler, config.correct_nodes));
        }
        let malicious: Vec<MaliciousNode> = (0..config.malicious_nodes)
            .map(|i| MaliciousNode::new(i, config.attack, config.seed))
            .collect();
        let malicious_ids: Vec<NodeId> = malicious.iter().map(|m| m.id()).collect();
        let mut sim = Self {
            config,
            nodes,
            malicious,
            malicious_ids,
            rng: StdRng::seed_from_u64(0),
            round: 0,
            connectivity_history: Vec::new(),
            total_messages: 0,
        };
        sim.rng = StdRng::seed_from_u64(sim.config.seed.wrapping_add(0xb10c_5eed));
        sim.bootstrap();
        Ok(sim)
    }

    /// Seeds every correct node's sampler with a random bootstrap view.
    fn bootstrap(&mut self) {
        let views = topology::bootstrap_views(
            self.config.correct_nodes,
            self.config.view_size,
            self.config.seed,
        );
        for (node, view) in self.nodes.iter_mut().zip(views) {
            for peer in view {
                node.deliver(peer);
            }
            node.process_inbox();
        }
    }

    /// Executes one synchronous gossip round.
    pub fn step(&mut self) {
        // Phase 1: collect correct-node pushes (synchronous semantics:
        // everyone sends based on the same round-start views).
        let mut deliveries: Vec<(usize, NodeId)> = Vec::new();
        for i in 0..self.nodes.len() {
            let sender_id = self.nodes[i].id();
            let view = self.nodes[i].view();
            if view.is_empty() {
                continue;
            }
            for _ in 0..self.config.fanout {
                let target = view[self.rng.gen_range(0..view.len())];
                self.total_messages += 1;
                if is_malicious_id(target) {
                    continue; // absorbed by the adversary
                }
                let Ok(target_idx) = usize::try_from(target.as_u64()) else { continue };
                if target_idx >= self.nodes.len() || target_idx == i {
                    continue;
                }
                // Push gossip: own id + current view contents.
                deliveries.push((target_idx, sender_id));
                for &peer in &view {
                    deliveries.push((target_idx, peer));
                }
            }
        }
        // Phase 2: adversarial pushes to every correct node.
        for m in &mut self.malicious {
            for target_idx in 0..self.nodes.len() {
                let batch = m.emit(&self.malicious_ids);
                if !batch.is_empty() {
                    self.total_messages += 1;
                }
                for id in batch {
                    deliveries.push((target_idx, id));
                }
            }
        }
        // Phase 3: deliver and process. Every node owns its sampler and
        // coin generator, so the sampling pass is embarrassingly parallel
        // and bit-identical for any thread count.
        for (target_idx, id) in deliveries {
            self.nodes[target_idx].deliver(id);
        }
        let threads = self.config.ingest_threads.min(self.nodes.len()).max(1);
        if threads == 1 {
            for node in &mut self.nodes {
                node.process_inbox();
            }
        } else {
            let per_thread = self.nodes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for nodes in self.nodes.chunks_mut(per_thread) {
                    scope.spawn(move || {
                        for node in nodes {
                            node.process_inbox();
                        }
                    });
                }
            });
        }
        // Phase 4: churn before T₀.
        if self.round < self.config.churn_rounds {
            self.apply_churn();
        }
        // Phase 5: record connectivity of the correct view graph.
        let views: Vec<Vec<NodeId>> = self.nodes.iter().map(|n| n.view()).collect();
        // The adversary observes the round's views — gossip pushes deliver
        // them to malicious partners anyway — so adaptive strategies can
        // retarget (static strategies ignore the observation).
        for m in &mut self.malicious {
            for view in &views {
                m.observe(view);
            }
        }
        self.connectivity_history.push(topology::is_weakly_connected(&views));
        self.round += 1;
    }

    /// Replaces a `churn_rate` fraction of correct nodes with fresh
    /// instances (state lost, slot identifier reused so the population size
    /// and metric domains stay fixed).
    fn apply_churn(&mut self) {
        let replacements = (self.config.correct_nodes as f64 * self.config.churn_rate) as usize;
        for _ in 0..replacements {
            let slot = self.rng.gen_range(0..self.nodes.len());
            let sampler_seed = self
                .config
                .seed
                .wrapping_add(self.round as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(slot as u64);
            if let Ok(sampler) = self.config.sampler.build(self.config.view_size, sampler_seed) {
                let id = self.nodes[slot].id();
                self.nodes[slot] = CorrectNode::new(id, sampler, self.config.correct_nodes);
                // A rejoining node bootstraps from one random live peer.
                let peer = self.rng.gen_range(0..self.config.correct_nodes as u64);
                if peer != id.as_u64() {
                    self.nodes[slot].deliver(NodeId::new(peer));
                    self.nodes[slot].process_inbox();
                }
            }
        }
    }

    /// Runs churn warm-up plus the configured stable rounds and returns the
    /// final metrics.
    pub fn run(&mut self) -> SimMetrics {
        let total = self.config.churn_rounds + self.config.rounds;
        while self.round < total {
            self.step();
        }
        self.metrics()
    }

    /// Current round number.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Read access to the correct nodes (for custom metrics).
    pub fn nodes(&self) -> &[CorrectNode] {
        &self.nodes
    }

    /// Current views of all correct nodes.
    pub fn views(&self) -> Vec<Vec<NodeId>> {
        self.nodes.iter().map(|n| n.view()).collect()
    }

    /// Computes the aggregate metrics at the current round.
    pub fn metrics(&self) -> SimMetrics {
        let views = self.views();
        let outputs: Vec<&[u64]> = self.nodes.iter().map(|n| n.output_correct_counts()).collect();
        let mean_output_kl = SimMetrics::mean_kl(&outputs);

        let (mut sybil_out, mut total_out) = (0.0f64, 0.0f64);
        let (mut sybil_in, mut total_in) = (0.0f64, 0.0f64);
        for node in &self.nodes {
            let correct_out: u64 = node.output_correct_counts().iter().sum();
            sybil_out += node.output_sybil_count() as f64;
            total_out += (correct_out + node.output_sybil_count()) as f64;
            let (received, received_sybil) = node.received_counts();
            sybil_in += received_sybil as f64;
            total_in += received as f64;
        }

        let (mut sybil_slots, mut total_slots) = (0usize, 0usize);
        for view in &views {
            total_slots += view.len();
            sybil_slots += view.iter().filter(|&&id| is_malicious_id(id)).count();
        }

        let degrees = topology::in_degrees(&views);
        let in_degree_mean = if degrees.is_empty() {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
        };

        SimMetrics {
            rounds_executed: self.round,
            correct_subgraph_connected: self
                .connectivity_history
                .last()
                .copied()
                .unwrap_or_else(|| topology::is_weakly_connected(&views)),
            connectivity_history: self.connectivity_history.clone(),
            mean_output_kl,
            mean_sybil_output_share: if total_out > 0.0 { sybil_out / total_out } else { 0.0 },
            mean_sybil_view_share: if total_slots > 0 {
                sybil_slots as f64 / total_slots as f64
            } else {
                0.0
            },
            mean_sybil_input_share: if total_in > 0.0 { sybil_in / total_in } else { 0.0 },
            in_degree_mean,
            in_degree_min: degrees.iter().copied().min().unwrap_or(0),
            in_degree_max: degrees.iter().copied().max().unwrap_or(0),
            total_messages: self.total_messages,
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("round", &self.round)
            .field("correct_nodes", &self.nodes.len())
            .field("malicious_nodes", &self.malicious.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::MaliciousStrategy;
    use crate::config::SamplerKind;

    fn base_config() -> crate::config::SimConfigBuilder {
        SimConfig::builder()
            .correct_nodes(50)
            .view_size(8)
            .fanout(3)
            .rounds(25)
            .sampler(SamplerKind::KnowledgeFree { width: 10, depth: 4 })
            .seed(11)
    }

    #[test]
    fn benign_overlay_stays_connected_and_balanced() {
        let mut sim = Simulation::new(base_config().build().unwrap()).unwrap();
        let metrics = sim.run();
        assert_eq!(metrics.rounds_executed, 25);
        assert!(metrics.correct_subgraph_connected);
        assert_eq!(metrics.mean_sybil_input_share, 0.0);
        assert_eq!(metrics.mean_sybil_view_share, 0.0);
        assert!(metrics.in_degree_mean > 0.0);
        assert!(metrics.total_messages > 0);
        // Every round should have been connected, not just the last.
        assert!(metrics.connectivity_history.iter().all(|&c| c));
    }

    #[test]
    fn simulation_is_deterministic() {
        let config = base_config().malicious_nodes(5).build().unwrap();
        let m1 = Simulation::new(config.clone()).unwrap().run();
        let m2 = Simulation::new(config).unwrap().run();
        assert_eq!(m1, m2);
    }

    #[test]
    fn adaptive_flood_runs_deterministically_and_is_contained() {
        // The adaptive attacker observes the round's views (wired in
        // step()) and retargets; the whole loop must stay deterministic
        // seed-for-seed, and the knowledge-free sampler must still keep
        // the sybil view share below the injected input share.
        let attack = MaliciousStrategy::AdaptiveFlood { distinct_sybils: 12, batch_per_round: 10 };
        let config = base_config().malicious_nodes(5).attack(attack).build().unwrap();
        let m1 = Simulation::new(config.clone()).unwrap().run();
        let m2 = Simulation::new(config).unwrap().run();
        assert_eq!(m1, m2, "adaptive attack broke determinism");
        assert!(m1.mean_sybil_input_share > 0.2, "attack not delivered");
        assert!(
            m1.mean_sybil_view_share < m1.mean_sybil_input_share,
            "sampler amplified the adaptive attack: views {} vs input {}",
            m1.mean_sybil_view_share,
            m1.mean_sybil_input_share
        );
    }

    #[test]
    fn parallel_sampling_pass_is_bit_identical() {
        // The ingest-thread count is purely a wall-clock knob: every node
        // owns its sampler RNG, so the metrics must match exactly.
        let sequential =
            Simulation::new(base_config().malicious_nodes(5).build().unwrap()).unwrap().run();
        for threads in [2usize, 4, 64] {
            let config = base_config().malicious_nodes(5).ingest_threads(threads).build().unwrap();
            let parallel = Simulation::new(config).unwrap().run();
            assert_eq!(parallel, sequential, "{threads} ingest threads diverged");
        }
    }

    #[test]
    fn flooding_contaminates_reservoir_views_more_than_knowledge_free() {
        // Volume flood: few certified sybils pushed hard. (Splitting the
        // flood across many distinct sybils instead makes each sybil *rare*,
        // and uniformity over identifiers then legitimately admits them —
        // the defense against identity-splitting is the §V certification
        // cost, not the sampler.)
        let attack = MaliciousStrategy::Flood { distinct_sybils: 10, batch_per_round: 10 };
        let kf_config = base_config().malicious_nodes(5).attack(attack).build().unwrap();
        let kf_metrics = Simulation::new(kf_config).unwrap().run();

        let res_config = base_config()
            .malicious_nodes(5)
            .attack(attack)
            .sampler(SamplerKind::Reservoir)
            .build()
            .unwrap();
        let res_metrics = Simulation::new(res_config).unwrap().run();

        // Both receive the same adversarial pressure…
        assert!(kf_metrics.mean_sybil_input_share > 0.3);
        assert!(res_metrics.mean_sybil_input_share > 0.3);
        // …but the knowledge-free views resist contamination clearly better.
        // (The gossip feedback loop — contaminated views re-advertising
        // sybils — keeps absolute contamination above the single-stream
        // fair share for every strategy, so we assert the ordering with a
        // margin rather than an absolute level.)
        assert!(
            kf_metrics.mean_sybil_view_share + 0.05 < res_metrics.mean_sybil_view_share,
            "knowledge-free {} vs reservoir {}",
            kf_metrics.mean_sybil_view_share,
            res_metrics.mean_sybil_view_share
        );
    }

    #[test]
    fn churn_phase_runs_and_recovers() {
        let config = base_config().churn_rounds(10).churn_rate(0.1).rounds(20).build().unwrap();
        let mut sim = Simulation::new(config).unwrap();
        let metrics = sim.run();
        assert_eq!(metrics.rounds_executed, 30);
        // After T₀ the overlay must have re-stabilized into connectivity.
        assert!(metrics.correct_subgraph_connected);
    }

    #[test]
    fn step_advances_round_and_views_shape() {
        let mut sim = Simulation::new(base_config().build().unwrap()).unwrap();
        assert_eq!(sim.round(), 0);
        sim.step();
        assert_eq!(sim.round(), 1);
        let views = sim.views();
        assert_eq!(views.len(), 50);
        assert!(views.iter().all(|v| v.len() <= 8));
        assert!(format!("{sim:?}").contains("Simulation"));
        assert_eq!(sim.nodes().len(), 50);
    }

    #[test]
    fn self_promotion_attack_with_minwise_freezes_views() {
        // Brahms cells converge; under self-promotion the adversary cannot
        // push its ids into converged min-wise cells unless they hash lower
        // — so contamination should stay bounded.
        let attack = MaliciousStrategy::SelfPromotion { batch_per_round: 10 };
        let config = base_config()
            .malicious_nodes(5)
            .attack(attack)
            .sampler(SamplerKind::MinWiseArray)
            .build()
            .unwrap();
        let metrics = Simulation::new(config).unwrap().run();
        // ℓ = 5 malicious of 55 total: unbiased share would be ~9%.
        assert!(
            metrics.mean_sybil_view_share < 0.35,
            "min-wise contamination {}",
            metrics.mean_sybil_view_share
        );
    }
}
