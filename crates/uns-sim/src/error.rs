//! Error type for simulation configuration.

use std::error::Error;
use std::fmt;

/// Errors returned when building or running a simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A configuration constraint was violated.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A sampler could not be constructed from the configuration.
    Sampler(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulation configuration: {reason}")
            }
            SimError::Sampler(reason) => write!(f, "sampler construction failed: {reason}"),
        }
    }
}

impl Error for SimError {}

impl From<uns_core::CoreError> for SimError {
    fn from(err: uns_core::CoreError) -> Self {
        SimError::Sampler(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!SimError::InvalidConfig { reason: "x".into() }.to_string().is_empty());
        assert!(!SimError::Sampler("y".into()).to_string().is_empty());
    }

    #[test]
    fn converts_core_errors() {
        let err: SimError = uns_core::CoreError::ZeroCapacity.into();
        assert!(matches!(err, SimError::Sampler(_)));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
