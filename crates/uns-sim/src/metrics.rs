//! Simulation metrics: uniformity, contamination, load balance and
//! connectivity.

use uns_analysis::kl;

/// Aggregate metrics of a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimMetrics {
    /// Total rounds executed (churn + stable).
    pub rounds_executed: usize,
    /// Whether the correct-node view graph was weakly connected at the end
    /// of the run (the paper's §III-C assumption / §I attack payoff).
    pub correct_subgraph_connected: bool,
    /// Per-stable-round connectivity of the correct view graph.
    pub connectivity_history: Vec<bool>,
    /// Mean over correct nodes of `D_KL(output ‖ uniform)` restricted to
    /// correct identifiers (nats).
    pub mean_output_kl: f64,
    /// Mean share of sampler outputs that were sybil identifiers.
    pub mean_sybil_output_share: f64,
    /// Mean share of view slots pointing at sybil identifiers (eclipse
    /// progress).
    pub mean_sybil_view_share: f64,
    /// Mean share of *input* stream elements that were adversarial (attack
    /// pressure actually delivered).
    pub mean_sybil_input_share: f64,
    /// Mean in-degree of correct nodes in the final view graph.
    pub in_degree_mean: f64,
    /// Smallest in-degree (0 ⇒ some node is invisible to everyone).
    pub in_degree_min: usize,
    /// Largest in-degree (hub formation indicator).
    pub in_degree_max: usize,
    /// Number of point-to-point gossip messages sent.
    pub total_messages: u64,
}

impl SimMetrics {
    /// Computes the mean KL-vs-uniform over per-node output count vectors,
    /// skipping nodes that emitted nothing.
    pub(crate) fn mean_kl(outputs: &[&[u64]]) -> f64 {
        let mut total = 0.0;
        let mut counted = 0usize;
        for counts in outputs {
            if counts.iter().any(|&c| c > 0) {
                if let Ok(d) = kl::kl_vs_uniform(counts) {
                    total += d;
                    counted += 1;
                }
            }
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_kl_skips_empty_outputs() {
        let a = [10u64, 10, 10, 10];
        let empty = [0u64, 0, 0, 0];
        let outputs: Vec<&[u64]> = vec![&a, &empty];
        assert!(SimMetrics::mean_kl(&outputs) < 1e-12);
        let outputs: Vec<&[u64]> = vec![&empty];
        assert_eq!(SimMetrics::mean_kl(&outputs), 0.0);
    }

    #[test]
    fn mean_kl_detects_bias() {
        let biased = [100u64, 1, 1, 1];
        let outputs: Vec<&[u64]> = vec![&biased];
        assert!(SimMetrics::mean_kl(&outputs) > 0.5);
    }
}
