//! Simulation metrics: uniformity, contamination, load balance and
//! connectivity — plus throughput accounting for the parallel sampling
//! pipeline.

use uns_analysis::kl;

/// Accounting of one parallel sampling pipeline run
/// ([`crate::ShardedIngestion::pipeline_ingest`] /
/// [`pipeline_feed`](crate::ShardedIngestion::pipeline_feed)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Stream elements processed (one admission candidate each).
    pub elements: u64,
    /// Worker threads configured for the chunk and candidate passes.
    pub shards: usize,
    /// Chunks the stream was cut into (pipelining granularity).
    pub chunks: usize,
    /// Elements that entered the memory `Γ` — free-slot inserts plus won
    /// admission coins (Algorithm 3's insertions).
    pub admitted: u64,
    /// Output samples drawn (equals `elements` for `pipeline_feed`, 0 for
    /// the input-only `pipeline_ingest`).
    pub outputs: u64,
}

impl PipelineStats {
    /// Fraction of stream elements that entered `Γ` — on adversarial
    /// streams the interesting number: a flooding identifier contributes
    /// many elements but few admissions.
    pub fn admission_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.admitted as f64 / self.elements as f64
        }
    }
}

/// Aggregate metrics of a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimMetrics {
    /// Total rounds executed (churn + stable).
    pub rounds_executed: usize,
    /// Whether the correct-node view graph was weakly connected at the end
    /// of the run (the paper's §III-C assumption / §I attack payoff).
    pub correct_subgraph_connected: bool,
    /// Per-stable-round connectivity of the correct view graph.
    pub connectivity_history: Vec<bool>,
    /// Mean over correct nodes of `D_KL(output ‖ uniform)` restricted to
    /// correct identifiers (nats).
    pub mean_output_kl: f64,
    /// Mean share of sampler outputs that were sybil identifiers.
    pub mean_sybil_output_share: f64,
    /// Mean share of view slots pointing at sybil identifiers (eclipse
    /// progress).
    pub mean_sybil_view_share: f64,
    /// Mean share of *input* stream elements that were adversarial (attack
    /// pressure actually delivered).
    pub mean_sybil_input_share: f64,
    /// Mean in-degree of correct nodes in the final view graph.
    pub in_degree_mean: f64,
    /// Smallest in-degree (0 ⇒ some node is invisible to everyone).
    pub in_degree_min: usize,
    /// Largest in-degree (hub formation indicator).
    pub in_degree_max: usize,
    /// Number of point-to-point gossip messages sent.
    pub total_messages: u64,
}

impl SimMetrics {
    /// Computes the mean KL-vs-uniform over per-node output count vectors,
    /// skipping nodes that emitted nothing.
    pub(crate) fn mean_kl(outputs: &[&[u64]]) -> f64 {
        let mut total = 0.0;
        let mut counted = 0usize;
        for counts in outputs {
            if counts.iter().any(|&c| c > 0) {
                if let Ok(d) = kl::kl_vs_uniform(counts) {
                    total += d;
                    counted += 1;
                }
            }
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_kl_skips_empty_outputs() {
        let a = [10u64, 10, 10, 10];
        let empty = [0u64, 0, 0, 0];
        let outputs: Vec<&[u64]> = vec![&a, &empty];
        assert!(SimMetrics::mean_kl(&outputs) < 1e-12);
        let outputs: Vec<&[u64]> = vec![&empty];
        assert_eq!(SimMetrics::mean_kl(&outputs), 0.0);
    }

    #[test]
    fn mean_kl_detects_bias() {
        let biased = [100u64, 1, 1, 1];
        let outputs: Vec<&[u64]> = vec![&biased];
        assert!(SimMetrics::mean_kl(&outputs) > 0.5);
    }

    #[test]
    fn pipeline_stats_admission_rate() {
        let empty = PipelineStats::default();
        assert_eq!(empty.admission_rate(), 0.0);
        let stats = PipelineStats { elements: 200, admitted: 50, ..PipelineStats::default() };
        assert!((stats.admission_rate() - 0.25).abs() < 1e-12);
    }
}
