//! Simulation metrics: uniformity, contamination, load balance and
//! connectivity — plus throughput accounting for the parallel sampling
//! pipeline.

use std::sync::Arc;
use uns_analysis::kl;
use uns_metrics::{Counter, Gauge, MetricsRegistry};

/// Exposition family name for [`PipelineStats::elements`].
pub const METRIC_STREAM_ELEMENTS: &str = "uns_stream_elements_total";
/// Exposition family name for [`PipelineStats::admitted`].
pub const METRIC_STREAM_ADMITTED: &str = "uns_stream_admitted_total";
/// Exposition family name for [`PipelineStats::outputs`].
pub const METRIC_STREAM_OUTPUTS: &str = "uns_stream_outputs_total";
/// Exposition family name for [`PipelineStats::chunks`].
pub const METRIC_STREAM_BATCHES: &str = "uns_stream_batches_total";
/// Exposition family name for [`PipelineStats::shards`].
pub const METRIC_STREAM_SHARDS: &str = "uns_stream_shards";

/// Accounting of one parallel sampling pipeline run
/// ([`crate::ShardedIngestion::pipeline_ingest`] /
/// [`pipeline_feed`](crate::ShardedIngestion::pipeline_feed)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Stream elements processed (one admission candidate each).
    pub elements: u64,
    /// Worker threads configured for the chunk and candidate passes.
    pub shards: usize,
    /// Chunks the stream was cut into (pipelining granularity).
    pub chunks: usize,
    /// Elements that entered the memory `Γ` — free-slot inserts plus won
    /// admission coins (Algorithm 3's insertions).
    pub admitted: u64,
    /// Output samples drawn (equals `elements` for `pipeline_feed`, 0 for
    /// the input-only `pipeline_ingest`).
    pub outputs: u64,
}

impl PipelineStats {
    /// Fraction of stream elements that entered `Γ` — on adversarial
    /// streams the interesting number: a flooding identifier contributes
    /// many elements but few admissions.
    pub fn admission_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.admitted as f64 / self.elements as f64
        }
    }
}

/// Registry handles for one stream's pipeline-accounting series, labeled
/// `stream="…"`. The family names are this module's `METRIC_STREAM_*`
/// constants, so any exporter of [`PipelineStats`] — the live service and
/// point-in-time dumps alike — lands on the same series.
#[derive(Debug)]
pub struct PipelineSeries {
    /// Stream elements processed ([`PipelineStats::elements`]).
    pub elements: Arc<Counter>,
    /// Elements admitted into `Γ` ([`PipelineStats::admitted`]).
    pub admitted: Arc<Counter>,
    /// Output samples drawn ([`PipelineStats::outputs`]).
    pub outputs: Arc<Counter>,
    /// Batches/chunks processed ([`PipelineStats::chunks`]).
    pub batches: Arc<Counter>,
    /// Configured shard workers ([`PipelineStats::shards`]).
    pub shards: Arc<Gauge>,
}

impl PipelineSeries {
    /// Registers (or re-acquires) the pipeline series for `stream`.
    pub fn register(registry: &MetricsRegistry, stream: &str) -> Self {
        let labels = [("stream", stream)];
        Self {
            elements: registry.counter(
                METRIC_STREAM_ELEMENTS,
                "Stream elements processed (one admission candidate each).",
                &labels,
            ),
            admitted: registry.counter(
                METRIC_STREAM_ADMITTED,
                "Elements admitted into the sampler memory (free-slot inserts plus won coins).",
                &labels,
            ),
            outputs: registry.counter(
                METRIC_STREAM_OUTPUTS,
                "Output samples drawn from the sampler.",
                &labels,
            ),
            batches: registry.counter(
                METRIC_STREAM_BATCHES,
                "Ingest/feed batches processed.",
                &labels,
            ),
            shards: registry.gauge(
                METRIC_STREAM_SHARDS,
                "Shard workers configured for the stream's pipeline.",
                &labels,
            ),
        }
    }

    /// Overwrites every series with the totals in `stats` — restore and
    /// point-in-time export paths; live instrumentation bumps the handles
    /// incrementally instead.
    pub fn set_to(&self, stats: &PipelineStats) {
        self.elements.set(stats.elements);
        self.admitted.set(stats.admitted);
        self.outputs.set(stats.outputs);
        self.batches.set(stats.chunks as u64);
        self.shards.set_u64(stats.shards as u64);
    }
}

impl PipelineStats {
    /// Exports this snapshot into `registry` under `stream="…"` labels.
    pub fn export_into(&self, registry: &MetricsRegistry, stream: &str) {
        PipelineSeries::register(registry, stream).set_to(self);
    }
}

/// Aggregate metrics of a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimMetrics {
    /// Total rounds executed (churn + stable).
    pub rounds_executed: usize,
    /// Whether the correct-node view graph was weakly connected at the end
    /// of the run (the paper's §III-C assumption / §I attack payoff).
    pub correct_subgraph_connected: bool,
    /// Per-stable-round connectivity of the correct view graph.
    pub connectivity_history: Vec<bool>,
    /// Mean over correct nodes of `D_KL(output ‖ uniform)` restricted to
    /// correct identifiers (nats).
    pub mean_output_kl: f64,
    /// Mean share of sampler outputs that were sybil identifiers.
    pub mean_sybil_output_share: f64,
    /// Mean share of view slots pointing at sybil identifiers (eclipse
    /// progress).
    pub mean_sybil_view_share: f64,
    /// Mean share of *input* stream elements that were adversarial (attack
    /// pressure actually delivered).
    pub mean_sybil_input_share: f64,
    /// Mean in-degree of correct nodes in the final view graph.
    pub in_degree_mean: f64,
    /// Smallest in-degree (0 ⇒ some node is invisible to everyone).
    pub in_degree_min: usize,
    /// Largest in-degree (hub formation indicator).
    pub in_degree_max: usize,
    /// Number of point-to-point gossip messages sent.
    pub total_messages: u64,
}

impl SimMetrics {
    /// Computes the mean KL-vs-uniform over per-node output count vectors,
    /// skipping nodes that emitted nothing.
    pub(crate) fn mean_kl(outputs: &[&[u64]]) -> f64 {
        let mut total = 0.0;
        let mut counted = 0usize;
        for counts in outputs {
            if counts.iter().any(|&c| c > 0) {
                if let Ok(d) = kl::kl_vs_uniform(counts) {
                    total += d;
                    counted += 1;
                }
            }
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_kl_skips_empty_outputs() {
        let a = [10u64, 10, 10, 10];
        let empty = [0u64, 0, 0, 0];
        let outputs: Vec<&[u64]> = vec![&a, &empty];
        assert!(SimMetrics::mean_kl(&outputs) < 1e-12);
        let outputs: Vec<&[u64]> = vec![&empty];
        assert_eq!(SimMetrics::mean_kl(&outputs), 0.0);
    }

    #[test]
    fn mean_kl_detects_bias() {
        let biased = [100u64, 1, 1, 1];
        let outputs: Vec<&[u64]> = vec![&biased];
        assert!(SimMetrics::mean_kl(&outputs) > 0.5);
    }

    #[test]
    fn pipeline_stats_export_round_trips_through_the_registry() {
        let registry = MetricsRegistry::new();
        let stats = PipelineStats { elements: 9, shards: 4, chunks: 3, admitted: 5, outputs: 9 };
        stats.export_into(&registry, "s1");
        let samples =
            uns_metrics::parse::parse_exposition(&registry.render()).expect("rendered text parses");
        let get = |name| {
            uns_metrics::parse::find(&samples, name, &[("stream", "s1")])
                .unwrap_or_else(|| panic!("missing {name}"))
                .value_u64()
                .expect("integer value")
        };
        assert_eq!(get(METRIC_STREAM_ELEMENTS), 9);
        assert_eq!(get(METRIC_STREAM_ADMITTED), 5);
        assert_eq!(get(METRIC_STREAM_OUTPUTS), 9);
        assert_eq!(get(METRIC_STREAM_BATCHES), 3);
        assert_eq!(get(METRIC_STREAM_SHARDS), 4);
    }

    #[test]
    fn pipeline_stats_admission_rate() {
        let empty = PipelineStats::default();
        assert_eq!(empty.admission_rate(), 0.0);
        let stats = PipelineStats { elements: 200, admitted: 50, ..PipelineStats::default() };
        assert!((stats.admission_rate() - 0.25).abs() < 1e-12);
    }
}
