//! Sharded parallel stream ingestion.
//!
//! The paper's sampling service is sequential: one stream, one sketch, one
//! memory. At production scale a node may face input streams of tens of
//! millions of identifiers (replayed backlogs, aggregated gossip from many
//! sockets) that a single core cannot absorb quickly enough. This module
//! exploits the one algebraic property that makes the Count-Min sketch
//! scale sideways: **sketches built with the same seed and dimensions are
//! mergeable by counter-wise addition**, and the merge is *exact* — the
//! merged sketch is bit-identical to the sketch of the concatenated stream
//! (`uns_sketch::CountMinSketch::merge`).
//!
//! [`ShardedIngestion`] splits a stream across worker threads, builds one
//! same-seed sketch per shard, merges them, and (optionally) seats a
//! knowledge-free sampler on top of the merged frequency state. The
//! division of labour mirrors how the paper separates Algorithm 2 (the
//! sketch, pure input processing — parallelizable) from Algorithm 3's
//! sampling loop (sequential coin flips — cheap):
//!
//! * sketch construction over the backlog: parallel, exact;
//! * the sampling pass that needs `Γ`'s coin history: sequential, but it
//!   starts from fully warmed frequency estimates, so a flooding
//!   identifier in the backlog is rejected from the very first element.
//!
//! # Example
//!
//! ```
//! use uns_core::{NodeId, NodeSampler};
//! use uns_sim::ShardedIngestion;
//! use uns_sketch::FrequencyEstimator;
//!
//! # fn main() -> Result<(), uns_sim::SimError> {
//! let stream: Vec<NodeId> = (0..100_000u64).map(|i| NodeId::new(i % 1000)).collect();
//! let ingestion = ShardedIngestion::new(10, 5, 42, 4)?;
//! // Exactly the sketch a single thread would have built:
//! let sketch = ingestion.sketch_stream(&stream)?;
//! assert_eq!(sketch.total(), 100_000);
//! // A sampler pre-warmed with the merged frequency state:
//! let mut sampler = ingestion.warm_sampler(&stream, 10, 7)?;
//! assert!(sampler.sample().is_none()); // Γ starts empty; estimates don't
//! # Ok(())
//! # }
//! ```

use crate::error::SimError;
use uns_core::{KnowledgeFreeSampler, NodeId};
use uns_sketch::{CountMinSketch, FrequencyEstimator, SketchError};

/// Splits identifier streams across threads into same-seed Count-Min
/// sketches and merges the shards exactly.
#[derive(Clone, Debug)]
pub struct ShardedIngestion {
    width: usize,
    depth: usize,
    seed: u64,
    shards: usize,
}

impl From<SketchError> for SimError {
    fn from(err: SketchError) -> Self {
        SimError::Sampler(err.to_string())
    }
}

impl ShardedIngestion {
    /// Configures sharded ingestion into sketches of `width × depth`
    /// counters derived from `seed`, using `shards` worker threads.
    ///
    /// # Errors
    ///
    /// Rejects zero `shards` as [`SimError::InvalidConfig`] and invalid
    /// sketch dimensions as [`SimError::Sampler`].
    pub fn new(width: usize, depth: usize, seed: u64, shards: usize) -> Result<Self, SimError> {
        if shards == 0 {
            return Err(SimError::InvalidConfig {
                reason: "sharded ingestion needs at least one shard".into(),
            });
        }
        // Validate the dimensions once, up front, so the per-shard
        // constructors inside worker threads cannot fail.
        CountMinSketch::with_dimensions(width, depth, seed)?;
        Ok(Self { width, depth, seed, shards })
    }

    /// Number of worker threads used per ingestion call.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Builds the Count-Min sketch of `stream` by sharding it across the
    /// configured worker threads and merging the per-shard sketches.
    ///
    /// The result is exactly — counter for counter — the sketch a single
    /// thread would build by recording `stream` in order: recording is
    /// commutative addition, and same-seed sketches share identical hash
    /// functions.
    ///
    /// # Errors
    ///
    /// Propagates sketch construction/merge failures as
    /// [`SimError::Sampler`] (not expected after the validation in
    /// [`ShardedIngestion::new`]).
    pub fn sketch_stream(&self, stream: &[NodeId]) -> Result<CountMinSketch, SimError> {
        let mut merged = CountMinSketch::with_dimensions(self.width, self.depth, self.seed)?;
        if stream.is_empty() {
            return Ok(merged);
        }
        let chunk_len = stream.len().div_ceil(self.shards);
        let shard_sketches: Vec<Result<CountMinSketch, SketchError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = stream
                    .chunks(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut sketch =
                                CountMinSketch::with_dimensions(self.width, self.depth, self.seed)?;
                            for id in chunk {
                                sketch.record(id.as_u64());
                            }
                            Ok(sketch)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("shard worker panicked"))
                    .collect()
            });
        for shard in shard_sketches {
            merged.merge(&shard?)?;
        }
        Ok(merged)
    }

    /// Ingests `stream` in parallel and seats a knowledge-free sampler
    /// (memory size `capacity`, coins from `sampler_seed`) on the merged
    /// estimator.
    ///
    /// The returned sampler's memory `Γ` is empty — it has *frequency*
    /// knowledge, not residency history — so its first `feed`s behave like
    /// a fresh sampler that magically already knows which identifiers are
    /// flooding. Note the estimator state counts the backlog: identifiers
    /// re-fed to the sampler afterwards are recorded again, exactly as if
    /// one long stream had been split at that point.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Sampler`] from sketch construction or a zero
    /// `capacity`.
    pub fn warm_sampler(
        &self,
        stream: &[NodeId],
        capacity: usize,
        sampler_seed: u64,
    ) -> Result<KnowledgeFreeSampler, SimError> {
        let sketch = self.sketch_stream(stream)?;
        Ok(KnowledgeFreeSampler::new(capacity, sketch, sampler_seed)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uns_core::NodeSampler;
    use uns_sketch::FrequencyEstimator;

    fn skewed_stream(len: usize, domain: u64, seed: u64) -> Vec<NodeId> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                // Half the stream floods id 0, the rest is uniform.
                if rng.gen::<bool>() {
                    NodeId::new(0)
                } else {
                    NodeId::new(rng.gen_range(0..domain))
                }
            })
            .collect()
    }

    #[test]
    fn rejects_bad_configuration() {
        assert!(matches!(ShardedIngestion::new(10, 5, 0, 0), Err(SimError::InvalidConfig { .. })));
        assert!(matches!(ShardedIngestion::new(0, 5, 0, 2), Err(SimError::Sampler(_))));
    }

    #[test]
    fn empty_stream_yields_empty_sketch() {
        let sketch = ShardedIngestion::new(8, 3, 1, 4).unwrap().sketch_stream(&[]).unwrap();
        assert_eq!(sketch.total(), 0);
        assert_eq!(sketch.floor_estimate(), 0);
    }

    /// The acceptance-criterion property: sharding a multi-million-element
    /// stream across 4 threads yields a merged sketch whose estimates
    /// (every point query, the floor, and the total) exactly equal
    /// single-threaded ingestion. Debug builds use a smaller stream so
    /// `cargo test` stays fast; release runs the full 10M.
    #[test]
    fn sharded_ingestion_equals_single_threaded_exactly() {
        let len = if cfg!(debug_assertions) { 300_000 } else { 10_000_000 };
        let domain = 10_000u64;
        let stream = skewed_stream(len, domain, 99);

        let ingestion = ShardedIngestion::new(10, 5, 42, 4).unwrap();
        assert_eq!(ingestion.shards(), 4);
        let sharded = ingestion.sketch_stream(&stream).unwrap();

        let mut single = CountMinSketch::with_dimensions(10, 5, 42).unwrap();
        for id in &stream {
            single.record(id.as_u64());
        }

        assert_eq!(sharded.total(), single.total());
        assert_eq!(sharded.floor_estimate(), single.floor_estimate());
        for row in 0..single.depth() {
            assert_eq!(sharded.row(row), single.row(row), "row {row} differs");
        }
        for id in 0..domain {
            assert_eq!(sharded.estimate(id), single.estimate(id), "estimate of id {id}");
        }
    }

    #[test]
    fn shard_count_does_not_change_the_sketch() {
        let stream = skewed_stream(50_000, 500, 3);
        let reference = ShardedIngestion::new(12, 4, 7, 1).unwrap().sketch_stream(&stream).unwrap();
        for shards in [2usize, 3, 8, 13] {
            let sketch =
                ShardedIngestion::new(12, 4, 7, shards).unwrap().sketch_stream(&stream).unwrap();
            for row in 0..reference.depth() {
                assert_eq!(sketch.row(row), reference.row(row), "{shards} shards, row {row}");
            }
        }
    }

    #[test]
    fn more_shards_than_elements_is_fine() {
        let stream: Vec<NodeId> = (0..5u64).map(NodeId::new).collect();
        let sketch = ShardedIngestion::new(4, 2, 1, 16).unwrap().sketch_stream(&stream).unwrap();
        assert_eq!(sketch.total(), 5);
    }

    #[test]
    fn warm_sampler_rejects_flooders_from_the_first_element() {
        // After ingesting a backlog where id 0 floods, the warmed sampler's
        // very first insertion decisions already discriminate against id 0.
        let stream = skewed_stream(200_000, 1_000, 11);
        let sampler =
            ShardedIngestion::new(10, 5, 21, 4).unwrap().warm_sampler(&stream, 10, 5).unwrap();
        let a_flood = sampler.insertion_probability_estimate(NodeId::new(0));
        let a_rare = sampler.insertion_probability_estimate(NodeId::new(777));
        // With k = 10 columns over 1000 distinct ids every counter carries
        // collision mass, so the absolute probabilities are sketch-bounded;
        // what must hold is the discrimination between flooder and rare id.
        assert!(a_flood < 0.15, "flooded id got a_j = {a_flood}");
        assert!(a_rare > 0.5, "rare id got a_j = {a_rare}");
        assert!(a_flood * 4.0 < a_rare, "no discrimination: {a_flood} vs {a_rare}");
        assert_eq!(sampler.capacity(), 10);
        // The estimator carries the whole backlog.
        assert_eq!(sampler.estimator().total(), 200_000);
    }
}
