//! Sharded parallel stream ingestion.
//!
//! The paper's sampling service is sequential: one stream, one sketch, one
//! memory. At production scale a node may face input streams of tens of
//! millions of identifiers (replayed backlogs, aggregated gossip from many
//! sockets) that a single core cannot absorb quickly enough. This module
//! exploits the one algebraic property that makes the Count-Min sketch
//! scale sideways: **sketches built with the same seed and dimensions are
//! mergeable by counter-wise addition**, and the merge is *exact* — the
//! merged sketch is bit-identical to the sketch of the concatenated stream
//! (`uns_sketch::CountMinSketch::merge`).
//!
//! [`ShardedIngestion`] splits a stream across worker threads, builds one
//! same-seed sketch per shard, merges them, and (optionally) seats a
//! knowledge-free sampler on top of the merged frequency state. The
//! division of labour mirrors how the paper separates Algorithm 2 (the
//! sketch, pure input processing — parallelizable) from Algorithm 3's
//! sampling loop (sequential coin flips — cheap):
//!
//! * sketch construction over the backlog: parallel, exact;
//! * the sampling pass that needs `Γ`'s coin history: sequential, but it
//!   starts from fully warmed frequency estimates, so a flooding
//!   identifier in the backlog is rejected from the very first element.
//!
//! # The full parallel sampling pipeline (single pass, delta logs)
//!
//! [`ShardedIngestion::pipeline_ingest`] / [`pipeline_feed`] go further:
//! they parallelize the *entire* Algorithm 3 run, not just the sketch, and
//! still produce output **bit-equal** to the sequential sampler. The key
//! observation is that the fused per-element query `(f̂_j, min_σ)` at
//! stream position `t` depends only on the sketch of the prefix `σ[..t]`
//! — and, under the standard update policy, on *which cells* an element
//! touches, which is a pure function of the hash family. The pipeline
//! therefore hashes every element exactly **once**:
//!
//! 1. **chunk pass (parallel)**: the stream is cut into chunks; for its
//!    current chunk, a worker computes each element's **delta log** — the
//!    per-row touched-cell indices
//!    ([`uns_sketch::CountMinSketch::touched_cells`]) — and accumulates
//!    the chunk's raw counter-delta matrix. This is the only hashing pass;
//! 2. **prefix merge (pipelined, cheap)**: a merger thread consumes the
//!    delta matrices in chunk order, hands each worker the exact prefix
//!    sketch at its chunk's start (a clone of the running merge,
//!    [`uns_sketch::CountMinSketch::merge_delta`]), and ends holding the
//!    full-stream sketch;
//! 3. **candidate pass (parallel, hash-free)**: the worker replays its
//!    chunk's delta log against the prefix clone via
//!    [`uns_sketch::CountMinSketch::record_at_cells`], annotating every
//!    element with the exact `(f̂_j, min_σ)` the sequential sampler would
//!    have seen — no re-hashing, just logged indices — and immediately
//!    drops the log (memory stays O(chunk) per worker);
//! 4. **replay (sequential, cheap)**: a single thread consumes the
//!    candidate queue in stream order and runs only the memory/coin half
//!    (`KnowledgeFreeSampler::absorb_precomputed_batch`), drawing coins
//!    exactly as the sequential sampler would.
//!
//! The hashing — the single most expensive part of the per-element sketch
//! work — is done once and spread over all shards; the counter updates run
//! twice (once into the delta matrix, once replaying onto the prefix), and
//! the sequential residue is a membership probe and the coin flips. The
//! previous two-pass pipeline re-hashed every element in its candidate
//! pass ([`ShardedIngestion::pipeline_ingest_two_pass`] keeps it as the
//! benchmark/differential reference). Either way the result is
//! exactness-preserving: memory `Γ`, RNG state and the installed estimator
//! all end bit-equal to a sequential run (pinned by tests at 10 M elements
//! / 4 threads in release).
//!
//! [`pipeline_feed`]: ShardedIngestion::pipeline_feed
//!
//! # Example
//!
//! ```
//! use uns_core::{NodeId, NodeSampler};
//! use uns_sim::ShardedIngestion;
//! use uns_sketch::FrequencyEstimator;
//!
//! # fn main() -> Result<(), uns_sim::SimError> {
//! let stream: Vec<NodeId> = (0..100_000u64).map(|i| NodeId::new(i % 1000)).collect();
//! let ingestion = ShardedIngestion::new(10, 5, 42, 4)?;
//! // Exactly the sketch a single thread would have built:
//! let sketch = ingestion.sketch_stream(&stream)?;
//! assert_eq!(sketch.total(), 100_000);
//! // A sampler pre-warmed with the merged frequency state:
//! let mut sampler = ingestion.warm_sampler(&stream, 10, 7)?;
//! assert!(sampler.sample().is_none()); // Γ starts empty; estimates don't
//! # Ok(())
//! # }
//! ```

use crate::error::SimError;
use crate::metrics::PipelineStats;
use std::sync::mpsc;
use uns_core::{KnowledgeFreeSampler, NodeId, NodeSampler};
use uns_sketch::{CountMinSketch, FrequencyEstimator, HashFamilyKind, SketchError};

/// One annotated admission candidate: the identifier plus the exact fused
/// `(f̂_j, min_σ)` the sequential sampler would compute at its position.
type Candidate = (NodeId, u64, u64);

/// Splits identifier streams across threads into same-seed Count-Min
/// sketches and merges the shards exactly.
#[derive(Clone, Debug)]
pub struct ShardedIngestion {
    width: usize,
    depth: usize,
    seed: u64,
    family: HashFamilyKind,
    shards: usize,
}

impl From<SketchError> for SimError {
    fn from(err: SketchError) -> Self {
        SimError::Sampler(err.to_string())
    }
}

impl ShardedIngestion {
    /// Configures sharded ingestion into sketches of `width × depth`
    /// counters derived from `seed`, using `shards` worker threads.
    ///
    /// # Errors
    ///
    /// Rejects zero `shards` as [`SimError::InvalidConfig`] and invalid
    /// sketch dimensions as [`SimError::Sampler`].
    pub fn new(width: usize, depth: usize, seed: u64, shards: usize) -> Result<Self, SimError> {
        Self::with_family(width, depth, seed, HashFamilyKind::Mersenne, shards)
    }

    /// [`ShardedIngestion::new`] with an explicit sketch hash family. The
    /// pipeline's bit-equality argument is family-agnostic — every
    /// same-`(seed, family)` sketch shares identical hash functions, and
    /// that is all the merge/replay machinery relies on — so the whole
    /// parallel path works unchanged over multiply-shift rows.
    ///
    /// # Errors
    ///
    /// As [`ShardedIngestion::new`].
    pub fn with_family(
        width: usize,
        depth: usize,
        seed: u64,
        family: HashFamilyKind,
        shards: usize,
    ) -> Result<Self, SimError> {
        if shards == 0 {
            return Err(SimError::InvalidConfig {
                reason: "sharded ingestion needs at least one shard".into(),
            });
        }
        // Validate the dimensions once, up front, so the per-shard
        // constructors inside worker threads cannot fail.
        CountMinSketch::with_dimensions_family(width, depth, seed, family)?;
        Ok(Self { width, depth, seed, family, shards })
    }

    /// Number of worker threads used per ingestion call.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Builds the Count-Min sketch of `stream` by sharding it across the
    /// configured worker threads and merging the per-shard sketches.
    ///
    /// The result is exactly — counter for counter — the sketch a single
    /// thread would build by recording `stream` in order: recording is
    /// commutative addition, and same-seed sketches share identical hash
    /// functions.
    ///
    /// # Errors
    ///
    /// Propagates sketch construction/merge failures as
    /// [`SimError::Sampler`] (not expected after the validation in
    /// [`ShardedIngestion::new`]).
    pub fn sketch_stream(&self, stream: &[NodeId]) -> Result<CountMinSketch, SimError> {
        let mut merged =
            CountMinSketch::with_dimensions_family(self.width, self.depth, self.seed, self.family)?;
        if stream.is_empty() {
            return Ok(merged);
        }
        let chunk_len = stream.len().div_ceil(self.shards);
        let shard_sketches: Vec<Result<CountMinSketch, SketchError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = stream
                    .chunks(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut sketch = CountMinSketch::with_dimensions_family(
                                self.width,
                                self.depth,
                                self.seed,
                                self.family,
                            )?;
                            for id in chunk {
                                sketch.record(id.as_u64());
                            }
                            Ok(sketch)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("shard worker panicked"))
                    .collect()
            });
        for shard in shard_sketches {
            merged.merge(&shard?)?;
        }
        Ok(merged)
    }

    /// Ingests `stream` in parallel and seats a knowledge-free sampler
    /// (memory size `capacity`, coins from `sampler_seed`) on the merged
    /// estimator.
    ///
    /// The returned sampler's memory `Γ` is empty — it has *frequency*
    /// knowledge, not residency history — so its first `feed`s behave like
    /// a fresh sampler that magically already knows which identifiers are
    /// flooding. Note the estimator state counts the backlog: identifiers
    /// re-fed to the sampler afterwards are recorded again, exactly as if
    /// one long stream had been split at that point.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Sampler`] from sketch construction or a zero
    /// `capacity`.
    pub fn warm_sampler(
        &self,
        stream: &[NodeId],
        capacity: usize,
        sampler_seed: u64,
    ) -> Result<KnowledgeFreeSampler, SimError> {
        let sketch = self.sketch_stream(stream)?;
        Ok(KnowledgeFreeSampler::new(capacity, sketch, sampler_seed)?)
    }

    /// Chunks per shard in the pipeline passes. Finer than one chunk per
    /// shard so the candidate pass and the replay thread overlap (a worker
    /// can annotate chunk `c + shards` while the replay consumes chunk
    /// `c`), at the price of `chunks` extra sketch clones.
    const CHUNKS_PER_SHARD: usize = 4;

    /// Runs the full parallel sampling pipeline over `stream` (see the
    /// module docs) and returns the warmed sampler plus throughput
    /// accounting. Input-only: no output samples are drawn.
    ///
    /// The result is **bit-equal** — memory `Γ` (including slot order),
    /// coin-generator state and estimator — to
    ///
    /// ```
    /// # use uns_core::{KnowledgeFreeSampler, NodeId, NodeSampler};
    /// # use uns_sketch::CountMinSketch;
    /// # let (width, depth, seed, capacity, sampler_seed) = (10, 5, 1, 4, 2);
    /// # let stream: Vec<NodeId> = (0..100u64).map(NodeId::new).collect();
    /// let estimator = CountMinSketch::with_dimensions(width, depth, seed).unwrap();
    /// let mut sampler = KnowledgeFreeSampler::new(capacity, estimator, sampler_seed).unwrap();
    /// for &id in &stream {
    ///     sampler.ingest(id);
    /// }
    /// ```
    ///
    /// run on one thread. Only the default [`uns_sketch::UpdatePolicy`]
    /// (Standard) is produced — conservative update makes per-row targets
    /// depend on the point query, which merges only approximately.
    ///
    /// # Errors
    ///
    /// Propagates sketch construction failures as [`SimError::Sampler`]
    /// and a zero `capacity` as [`SimError::Sampler`] (via
    /// `uns_core::CoreError`).
    pub fn pipeline_ingest(
        &self,
        stream: &[NodeId],
        capacity: usize,
        sampler_seed: u64,
    ) -> Result<(KnowledgeFreeSampler, PipelineStats), SimError> {
        self.pipeline_run(stream, capacity, sampler_seed, None)
    }

    /// [`ShardedIngestion::pipeline_ingest`] plus the per-element uniform
    /// output draws of [`uns_core::NodeSampler::feed`]: appends one output
    /// identifier per stream element to `out`, bit-equal to feeding the
    /// stream sequentially.
    ///
    /// # Errors
    ///
    /// As [`ShardedIngestion::pipeline_ingest`].
    pub fn pipeline_feed(
        &self,
        stream: &[NodeId],
        capacity: usize,
        sampler_seed: u64,
        out: &mut Vec<NodeId>,
    ) -> Result<(KnowledgeFreeSampler, PipelineStats), SimError> {
        self.pipeline_run(stream, capacity, sampler_seed, Some(out))
    }

    /// The single-pass delta-log pipeline behind
    /// [`ShardedIngestion::pipeline_ingest`]/[`ShardedIngestion::pipeline_feed`]
    /// (see the module docs for the four stages).
    fn pipeline_run(
        &self,
        stream: &[NodeId],
        capacity: usize,
        sampler_seed: u64,
        mut out: Option<&mut Vec<NodeId>>,
    ) -> Result<(KnowledgeFreeSampler, PipelineStats), SimError> {
        let estimator =
            CountMinSketch::with_dimensions_family(self.width, self.depth, self.seed, self.family)?;
        let mut sampler = KnowledgeFreeSampler::new(capacity, estimator, sampler_seed)?;
        let mut stats = PipelineStats {
            elements: stream.len() as u64,
            shards: self.shards,
            ..PipelineStats::default()
        };
        if stream.is_empty() {
            return Ok((sampler, stats));
        }
        if let Some(out) = out.as_deref_mut() {
            out.reserve(stream.len());
        }

        let chunk_len = stream.len().div_ceil(self.shards * Self::CHUNKS_PER_SHARD).max(1);
        let chunks: Vec<&[NodeId]> = stream.chunks(chunk_len).collect();
        stats.chunks = chunks.len();
        let workers = self.shards.min(chunks.len());
        let depth = self.depth;
        let cell_count = self.width * self.depth;
        // Shared hash reference for the delta logs (hash functions are the
        // same in every same-seed sketch) and the merger's running sketch.
        let reference =
            CountMinSketch::with_dimensions_family(self.width, self.depth, self.seed, self.family)?;
        let running = reference.clone();

        let full_sketch = std::thread::scope(|scope| {
            // One bounded channel set *per worker*: worker w owns chunks
            // w, w+W, … and exchanges messages in that order, so the
            // merger (chunk order) and the replay thread (stream order)
            // simply round-robin the channels — no reorder buffers, and a
            // stalled stage backpressures everyone to ~1 chunk in flight
            // per worker instead of letting anything pile up.
            let mut delta_txs = Vec::with_capacity(workers);
            let mut prefix_rxs = Vec::with_capacity(workers);
            let mut cand_rxs = Vec::with_capacity(workers);
            let mut prefix_txs = Vec::with_capacity(workers);
            let mut delta_rxs = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (delta_tx, delta_rx) = mpsc::sync_channel::<(Vec<u64>, u64)>(1);
                let (prefix_tx, prefix_rx) = mpsc::sync_channel::<CountMinSketch>(1);
                let (cand_tx, cand_rx) = mpsc::sync_channel::<Vec<Candidate>>(1);
                delta_txs.push(Some((delta_tx, cand_tx)));
                prefix_rxs.push(Some(prefix_rx));
                prefix_txs.push(prefix_tx);
                delta_rxs.push(delta_rx);
                cand_rxs.push(cand_rx);
            }

            // Merger: consumes delta matrices in chunk order, hands each
            // worker its exact prefix sketch, ends as the full merge.
            let chunk_count = chunks.len();
            let merger = scope.spawn(move || {
                let mut running = running;
                for c in 0..chunk_count {
                    let Ok((delta, elements)) = delta_rxs[c % workers].recv() else {
                        break; // worker gone: scope will re-raise its panic
                    };
                    if prefix_txs[c % workers].send(running.clone()).is_err() {
                        break;
                    }
                    running
                        .merge_delta(&delta, elements)
                        .expect("chunk delta matches the sketch shape");
                }
                running
            });

            for w in 0..workers {
                let (delta_tx, cand_tx) = delta_txs[w].take().expect("channel set unclaimed");
                let prefix_rx = prefix_rxs[w].take().expect("channel set unclaimed");
                let chunks = &chunks;
                let reference = &reference;
                scope.spawn(move || {
                    let mut log: Vec<u32> = Vec::new();
                    for c in (w..chunks.len()).step_by(workers) {
                        let chunk = chunks[c];
                        // Chunk pass: delta log + raw delta matrix — the
                        // only pass that hashes.
                        log.clear();
                        log.reserve(chunk.len() * depth);
                        let mut delta = vec![0u64; cell_count];
                        for &id in chunk {
                            let start = log.len();
                            reference.touched_cells(id.as_u64(), &mut log);
                            for &idx in &log[start..] {
                                delta[idx as usize] += 1;
                            }
                        }
                        if delta_tx.send((delta, chunk.len() as u64)).is_err() {
                            return; // merger gone: abandon quietly
                        }
                        // Candidate pass: replay the log against the exact
                        // prefix state — annotated fused values, no hashing.
                        let Ok(mut prefix) = prefix_rx.recv() else {
                            return;
                        };
                        let mut candidates = Vec::with_capacity(chunk.len());
                        for (i, &id) in chunk.iter().enumerate() {
                            let (f_hat, min_sigma) =
                                prefix.record_at_cells(&log[i * depth..(i + 1) * depth]);
                            candidates.push((id, f_hat, min_sigma));
                        }
                        if cand_tx.send(candidates).is_err() {
                            return; // replay side gone
                        }
                    }
                });
            }

            // Replay (this thread): stream order, exact coin order.
            for next in 0..chunks.len() {
                let Ok(candidates) = cand_rxs[next % workers].recv() else {
                    break; // a worker panicked; the scope re-raises it
                };
                match out.as_deref_mut() {
                    None => stats.admitted += sampler.absorb_precomputed_batch(&candidates),
                    Some(out) => {
                        for (id, f_hat, min_sigma) in candidates {
                            stats.admitted +=
                                u64::from(sampler.absorb_precomputed(id, f_hat, min_sigma));
                            let sample =
                                sampler.sample().expect("memory is non-empty after an absorb");
                            out.push(sample);
                            stats.outputs += 1;
                        }
                    }
                }
            }

            merger.join().expect("merger panicked")
        });

        // The replayed sampler never touched its own estimator; install the
        // full-stream sketch (exactly what sequential ingestion builds).
        sampler.install_estimator(full_sketch);
        Ok((sampler, stats))
    }

    /// The previous **two-pass** pipeline, retained as the re-hashing
    /// reference the delta-log pipeline is benchmarked (criterion group
    /// `parallel_pipeline_4m`) and differential-tested against: its
    /// candidate pass re-hashes every element from a cloned prefix sketch
    /// instead of replaying the chunk pass's delta log. Results are
    /// bit-equal to [`ShardedIngestion::pipeline_ingest`] (and therefore to
    /// sequential ingestion); only the cost profile differs.
    ///
    /// # Errors
    ///
    /// As [`ShardedIngestion::pipeline_ingest`].
    pub fn pipeline_ingest_two_pass(
        &self,
        stream: &[NodeId],
        capacity: usize,
        sampler_seed: u64,
    ) -> Result<(KnowledgeFreeSampler, PipelineStats), SimError> {
        self.pipeline_run_two_pass(stream, capacity, sampler_seed, None)
    }

    fn pipeline_run_two_pass(
        &self,
        stream: &[NodeId],
        capacity: usize,
        sampler_seed: u64,
        mut out: Option<&mut Vec<NodeId>>,
    ) -> Result<(KnowledgeFreeSampler, PipelineStats), SimError> {
        let estimator =
            CountMinSketch::with_dimensions_family(self.width, self.depth, self.seed, self.family)?;
        let mut sampler = KnowledgeFreeSampler::new(capacity, estimator, sampler_seed)?;
        let mut stats = PipelineStats {
            elements: stream.len() as u64,
            shards: self.shards,
            ..PipelineStats::default()
        };
        if stream.is_empty() {
            return Ok((sampler, stats));
        }
        if let Some(out) = out.as_deref_mut() {
            out.reserve(stream.len());
        }

        // Chunk pass: per-chunk sketches in parallel (same-seed, mergeable).
        let chunk_len = stream.len().div_ceil(self.shards * Self::CHUNKS_PER_SHARD).max(1);
        let chunks: Vec<&[NodeId]> = stream.chunks(chunk_len).collect();
        stats.chunks = chunks.len();
        let workers = self.shards.min(chunks.len());
        let chunk_sketches = self.build_chunk_sketches(&chunks, workers)?;

        // Prefix merge: prefixes[c] is the exact sketch of stream[..start
        // of chunk c]; `running` ends as the full-stream sketch.
        let mut running =
            CountMinSketch::with_dimensions_family(self.width, self.depth, self.seed, self.family)?;
        let mut prefixes = Vec::with_capacity(chunks.len());
        for chunk_sketch in &chunk_sketches {
            prefixes.push(running.clone());
            running.merge(chunk_sketch)?;
        }

        // Candidate pass + replay: workers annotate their chunks with the
        // exact fused (f̂_j, min_σ) per element; this thread consumes the
        // candidate queue in stream order, drawing coins exactly as the
        // sequential sampler would. One bounded channel *per worker*:
        // worker w owns chunks w, w+W, … and sends them in that order, so
        // chunk `next` is simply the next message on channel `next % W` —
        // no reorder buffer, and a stalled worker backpressures everyone
        // to at most ~2 chunks in flight each instead of letting the
        // whole annotated stream pile up on the replay side.
        std::thread::scope(|scope| {
            let mut receivers = Vec::with_capacity(workers);
            for w in 0..workers {
                let (tx, rx) = mpsc::sync_channel::<Vec<Candidate>>(1);
                receivers.push(rx);
                let chunks = &chunks;
                let prefixes = &prefixes;
                scope.spawn(move || {
                    for c in (w..chunks.len()).step_by(workers) {
                        let mut sketch = prefixes[c].clone();
                        let mut candidates = Vec::with_capacity(chunks[c].len());
                        for &id in chunks[c] {
                            let (f_hat, min_sigma) = sketch.record_and_estimate(id.as_u64());
                            candidates.push((id, f_hat, min_sigma));
                        }
                        if tx.send(candidates).is_err() {
                            return; // replay side gone: abandon quietly
                        }
                    }
                });
            }

            for next in 0..chunks.len() {
                // Workers cannot fail; a closed channel means one panicked,
                // and the scope will re-raise its panic when joining.
                let Ok(candidates) = receivers[next % workers].recv() else {
                    break;
                };
                for (id, f_hat, min_sigma) in candidates {
                    stats.admitted += u64::from(sampler.absorb_precomputed(id, f_hat, min_sigma));
                    if let Some(out) = out.as_deref_mut() {
                        let sample = sampler.sample().expect("memory is non-empty after an absorb");
                        out.push(sample);
                        stats.outputs += 1;
                    }
                }
            }
        });

        // The replayed sampler never touched its own estimator; install the
        // full-stream sketch (exactly what sequential ingestion builds).
        sampler.install_estimator(running);
        Ok((sampler, stats))
    }

    /// Builds the per-chunk sketches of the chunk pass, `workers` threads
    /// striding over the chunk list.
    fn build_chunk_sketches(
        &self,
        chunks: &[&[NodeId]],
        workers: usize,
    ) -> Result<Vec<CountMinSketch>, SimError> {
        let built: Vec<Result<Vec<(usize, CountMinSketch)>, SketchError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut built = Vec::new();
                            for c in (w..chunks.len()).step_by(workers) {
                                let mut sketch = CountMinSketch::with_dimensions_family(
                                    self.width,
                                    self.depth,
                                    self.seed,
                                    self.family,
                                )?;
                                for id in chunks[c] {
                                    sketch.record(id.as_u64());
                                }
                                built.push((c, sketch));
                            }
                            Ok(built)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("chunk worker panicked"))
                    .collect()
            });
        let mut ordered: Vec<Option<CountMinSketch>> = vec![None; chunks.len()];
        for worker_built in built {
            for (c, sketch) in worker_built? {
                ordered[c] = Some(sketch);
            }
        }
        Ok(ordered.into_iter().map(|s| s.expect("every chunk was sketched")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uns_core::NodeSampler;
    use uns_sketch::FrequencyEstimator;

    fn skewed_stream(len: usize, domain: u64, seed: u64) -> Vec<NodeId> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                // Half the stream floods id 0, the rest is uniform.
                if rng.gen::<bool>() {
                    NodeId::new(0)
                } else {
                    NodeId::new(rng.gen_range(0..domain))
                }
            })
            .collect()
    }

    #[test]
    fn rejects_bad_configuration() {
        assert!(matches!(ShardedIngestion::new(10, 5, 0, 0), Err(SimError::InvalidConfig { .. })));
        assert!(matches!(ShardedIngestion::new(0, 5, 0, 2), Err(SimError::Sampler(_))));
    }

    #[test]
    fn empty_stream_yields_empty_sketch() {
        let sketch = ShardedIngestion::new(8, 3, 1, 4).unwrap().sketch_stream(&[]).unwrap();
        assert_eq!(sketch.total(), 0);
        assert_eq!(sketch.floor_estimate(), 0);
    }

    /// The acceptance-criterion property: sharding a multi-million-element
    /// stream across 4 threads yields a merged sketch whose estimates
    /// (every point query, the floor, and the total) exactly equal
    /// single-threaded ingestion. Debug builds use a smaller stream so
    /// `cargo test` stays fast; release runs the full 10M.
    #[test]
    fn sharded_ingestion_equals_single_threaded_exactly() {
        let len = if cfg!(debug_assertions) { 300_000 } else { 10_000_000 };
        let domain = 10_000u64;
        let stream = skewed_stream(len, domain, 99);

        let ingestion = ShardedIngestion::new(10, 5, 42, 4).unwrap();
        assert_eq!(ingestion.shards(), 4);
        let sharded = ingestion.sketch_stream(&stream).unwrap();

        let mut single = CountMinSketch::with_dimensions(10, 5, 42).unwrap();
        for id in &stream {
            single.record(id.as_u64());
        }

        assert_eq!(sharded.total(), single.total());
        assert_eq!(sharded.floor_estimate(), single.floor_estimate());
        for row in 0..single.depth() {
            assert_eq!(sharded.row(row), single.row(row), "row {row} differs");
        }
        for id in 0..domain {
            assert_eq!(sharded.estimate(id), single.estimate(id), "estimate of id {id}");
        }
    }

    #[test]
    fn shard_count_does_not_change_the_sketch() {
        let stream = skewed_stream(50_000, 500, 3);
        let reference = ShardedIngestion::new(12, 4, 7, 1).unwrap().sketch_stream(&stream).unwrap();
        for shards in [2usize, 3, 8, 13] {
            let sketch =
                ShardedIngestion::new(12, 4, 7, shards).unwrap().sketch_stream(&stream).unwrap();
            for row in 0..reference.depth() {
                assert_eq!(sketch.row(row), reference.row(row), "{shards} shards, row {row}");
            }
        }
    }

    #[test]
    fn multiply_shift_pipeline_is_bit_equal_to_sequential() {
        // The bit-equality contract holds per family: a multiply-shift
        // pipeline must reproduce the multiply-shift sequential sampler
        // exactly, and the sharded sketch must match single-threaded
        // ingestion counter for counter.
        let stream = skewed_stream(120_000, 2_000, 17);
        let ingestion =
            ShardedIngestion::with_family(10, 5, 42, HashFamilyKind::MultiplyShift, 4).unwrap();

        let sharded = ingestion.sketch_stream(&stream).unwrap();
        let mut single =
            CountMinSketch::with_dimensions_family(10, 5, 42, HashFamilyKind::MultiplyShift)
                .unwrap();
        for id in &stream {
            single.record(id.as_u64());
        }
        for row in 0..single.depth() {
            assert_eq!(sharded.row(row), single.row(row), "row {row} differs");
        }

        let (pipelined, _stats) = ingestion.pipeline_ingest(&stream, 10, 7).unwrap();
        let estimator =
            CountMinSketch::with_dimensions_family(10, 5, 42, HashFamilyKind::MultiplyShift)
                .unwrap();
        let mut sequential = KnowledgeFreeSampler::new(10, estimator, 7).unwrap();
        for &id in &stream {
            sequential.ingest(id);
        }
        let mut pipelined = pipelined;
        assert_eq!(pipelined.memory_contents(), sequential.memory_contents());
        for _ in 0..64 {
            assert_eq!(pipelined.sample(), sequential.sample());
        }
    }

    #[test]
    fn more_shards_than_elements_is_fine() {
        let stream: Vec<NodeId> = (0..5u64).map(NodeId::new).collect();
        let sketch = ShardedIngestion::new(4, 2, 1, 16).unwrap().sketch_stream(&stream).unwrap();
        assert_eq!(sketch.total(), 5);
    }

    /// Sequential reference for the pipeline contract: the exact sampler
    /// `pipeline_run` promises to reproduce bit for bit.
    fn sequential_sampler(
        (width, depth, sketch_seed): (usize, usize, u64),
        capacity: usize,
        sampler_seed: u64,
    ) -> KnowledgeFreeSampler {
        let estimator = CountMinSketch::with_dimensions(width, depth, sketch_seed).unwrap();
        KnowledgeFreeSampler::new(capacity, estimator, sampler_seed).unwrap()
    }

    /// The acceptance-criterion property: the full parallel pipeline at
    /// 10 M elements / 4 threads leaves the sampler — memory `Γ` including
    /// slot order, coin-generator state, and estimator — bit-equal to
    /// sequential ingestion. Debug builds use a smaller stream so
    /// `cargo test` stays fast; release runs the full 10 M.
    #[test]
    fn pipeline_ingest_is_bit_equal_to_sequential_at_scale() {
        let len = if cfg!(debug_assertions) { 300_000 } else { 10_000_000 };
        let domain = 10_000u64;
        let stream = skewed_stream(len, domain, 99);

        let ingestion = ShardedIngestion::new(10, 5, 42, 4).unwrap();
        let (pipelined, stats) = ingestion.pipeline_ingest(&stream, 10, 7).unwrap();
        assert_eq!(stats.elements, len as u64);
        assert_eq!(stats.shards, 4);
        assert!(stats.chunks >= 4);
        assert!(stats.admitted >= 10); // at least the free-slot fills
        assert_eq!(stats.outputs, 0);

        let mut sequential = sequential_sampler((10, 5, 42), 10, 7);
        for &id in &stream {
            sequential.ingest(id);
        }

        // Γ bit-equal, including slot order.
        let mut pipelined = pipelined;
        assert_eq!(pipelined.memory_contents(), sequential.memory_contents());
        // RNG state bit-equal: subsequent draws coincide.
        for _ in 0..64 {
            assert_eq!(pipelined.sample(), sequential.sample());
        }
        // Estimator bit-equal: every counter row and the floor.
        let (pe, se) = (pipelined.estimator(), sequential.estimator());
        assert_eq!(pe.total(), se.total());
        assert_eq!(pe.floor_estimate(), se.floor_estimate());
        for row in 0..se.depth() {
            assert_eq!(pe.row(row), se.row(row), "row {row} differs");
        }
        // And the two keep evolving identically when fed further.
        for id in 0..1_000u64 {
            assert_eq!(pipelined.feed(NodeId::new(id)), sequential.feed(NodeId::new(id)));
        }
    }

    #[test]
    fn pipeline_feed_outputs_match_sequential_feed() {
        let stream = skewed_stream(120_000, 2_000, 5);
        let ingestion = ShardedIngestion::new(10, 5, 42, 4).unwrap();
        let mut outputs = Vec::new();
        let (_, stats) = ingestion.pipeline_feed(&stream, 8, 3, &mut outputs).unwrap();
        assert_eq!(stats.outputs, stream.len() as u64);
        assert!(stats.admission_rate() > 0.0 && stats.admission_rate() <= 1.0);

        let mut sequential = sequential_sampler((10, 5, 42), 8, 3);
        let expected: Vec<NodeId> = stream.iter().map(|&id| sequential.feed(id)).collect();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn delta_log_pipeline_matches_two_pass_reference_and_sequential() {
        // Three implementations of the same contract must agree bit for
        // bit: the delta-log single-pass pipeline, the retained two-pass
        // (re-hashing) reference, and plain sequential ingestion.
        let stream = skewed_stream(150_000, 3_000, 77);
        for shards in [1usize, 3, 4] {
            let ingestion = ShardedIngestion::new(10, 5, 42, shards).unwrap();
            let (mut delta_log, delta_stats) = ingestion.pipeline_ingest(&stream, 9, 13).unwrap();
            let (mut two_pass, two_stats) =
                ingestion.pipeline_ingest_two_pass(&stream, 9, 13).unwrap();
            assert_eq!(delta_stats, two_stats, "{shards} shards: stats diverged");

            let mut sequential = sequential_sampler((10, 5, 42), 9, 13);
            for &id in &stream {
                sequential.ingest(id);
            }
            assert_eq!(delta_log.memory_contents(), sequential.memory_contents());
            assert_eq!(two_pass.memory_contents(), sequential.memory_contents());
            for row in 0..sequential.estimator().depth() {
                assert_eq!(delta_log.estimator().row(row), sequential.estimator().row(row));
                assert_eq!(two_pass.estimator().row(row), sequential.estimator().row(row));
            }
            assert_eq!(
                delta_log.estimator().floor_estimate(),
                sequential.estimator().floor_estimate()
            );
            // Coin streams aligned: the next draws coincide across all three.
            for _ in 0..64 {
                let expected = sequential.sample();
                assert_eq!(delta_log.sample(), expected);
                assert_eq!(two_pass.sample(), expected);
            }
        }
    }

    #[test]
    fn pipeline_shard_count_does_not_change_the_result() {
        let stream = skewed_stream(40_000, 500, 21);
        let reference_outputs = {
            let ingestion = ShardedIngestion::new(12, 4, 7, 1).unwrap();
            let mut out = Vec::new();
            ingestion.pipeline_feed(&stream, 6, 9, &mut out).unwrap();
            out
        };
        for shards in [2usize, 3, 8] {
            let ingestion = ShardedIngestion::new(12, 4, 7, shards).unwrap();
            let mut out = Vec::new();
            ingestion.pipeline_feed(&stream, 6, 9, &mut out).unwrap();
            assert_eq!(out, reference_outputs, "{shards} shards diverged");
        }
    }

    #[test]
    fn pipeline_handles_empty_and_tiny_streams() {
        let ingestion = ShardedIngestion::new(8, 3, 1, 4).unwrap();
        let (mut sampler, stats) = ingestion.pipeline_ingest(&[], 5, 1).unwrap();
        assert_eq!(stats.elements, 0);
        assert_eq!(stats.admission_rate(), 0.0);
        assert_eq!(sampler.sample(), None);

        let tiny: Vec<NodeId> = (0..3u64).map(NodeId::new).collect();
        let (mut sampler, stats) = ingestion.pipeline_ingest(&tiny, 5, 1).unwrap();
        assert_eq!(stats.elements, 3);
        assert_eq!(stats.admitted, 3); // free slots
        assert!(sampler.sample().is_some());
    }

    #[test]
    fn warm_sampler_rejects_flooders_from_the_first_element() {
        // After ingesting a backlog where id 0 floods, the warmed sampler's
        // very first insertion decisions already discriminate against id 0.
        let stream = skewed_stream(200_000, 1_000, 11);
        let sampler =
            ShardedIngestion::new(10, 5, 21, 4).unwrap().warm_sampler(&stream, 10, 5).unwrap();
        let a_flood = sampler.insertion_probability_estimate(NodeId::new(0));
        let a_rare = sampler.insertion_probability_estimate(NodeId::new(777));
        // With k = 10 columns over 1000 distinct ids every counter carries
        // collision mass, so the absolute probabilities are sketch-bounded;
        // what must hold is the discrimination between flooder and rare id.
        assert!(a_flood < 0.15, "flooded id got a_j = {a_flood}");
        assert!(a_rare > 0.5, "rare id got a_j = {a_rare}");
        assert!(a_flood * 4.0 < a_rare, "no discrimination: {a_flood} vs {a_rare}");
        assert_eq!(sampler.capacity(), 10);
        // The estimator carries the whole backlog.
        assert_eq!(sampler.estimator().total(), 200_000);
    }
}
