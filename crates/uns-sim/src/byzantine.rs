//! The Byzantine adversary (§III-B): colluding malicious nodes that inject
//! identifiers into correct nodes' input streams.
//!
//! The adversary controls `ℓ` real malicious nodes but can mint many more
//! *sybil identifiers* (each certified identifier has a creation cost —
//! that cost is exactly the §V effort `L_{k,s}`/`E_k`). Every gossip round,
//! each malicious node pushes a batch of identifiers to every correct node
//! it can reach.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uns_core::NodeId;

/// Base value for sybil identifiers, far above any correct-node identifier
/// so contamination is measurable.
pub const SYBIL_ID_BASE: u64 = 1 << 32;

/// What the adversary's nodes send each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaliciousStrategy {
    /// Flood: cycle through `distinct_sybils` identifiers, sending
    /// `batch_per_round` of them to every reachable correct node per round.
    /// `distinct_sybils` is the §V "effort"; compare it against
    /// `E_k`/`L_{k,s}` to reproduce the effort analysis in vivo.
    Flood {
        /// Number of distinct sybil identifiers the adversary paid for.
        distinct_sybils: usize,
        /// Identifiers pushed to each correct node per round.
        batch_per_round: usize,
    },
    /// Self-promotion: all malicious nodes push only their own `ℓ` real
    /// identifiers (a hub/eclipse attempt as in Jesi et al.).
    SelfPromotion {
        /// Identifiers pushed to each correct node per round.
        batch_per_round: usize,
    },
    /// The adversary stays silent (baseline overlay behaviour).
    Silent,
}

impl Default for MaliciousStrategy {
    /// A moderate flood: 100 distinct sybils, 10 pushes per node per round.
    fn default() -> Self {
        MaliciousStrategy::Flood { distinct_sybils: 100, batch_per_round: 10 }
    }
}

/// A real malicious node (one of the `ℓ` the adversary controls).
#[derive(Clone, Debug)]
pub struct MaliciousNode {
    id: NodeId,
    strategy: MaliciousStrategy,
    rng: StdRng,
    /// Rotating cursor over the sybil pool so floods cycle through all
    /// purchased identifiers.
    cursor: usize,
}

impl MaliciousNode {
    /// Creates malicious node `index` (of `ℓ`) with its own identifier and
    /// deterministic coins.
    pub fn new(index: usize, strategy: MaliciousStrategy, seed: u64) -> Self {
        Self {
            id: NodeId::new(SYBIL_ID_BASE + index as u64),
            strategy,
            rng: StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            cursor: 0,
        }
    }

    /// This node's own (certified) identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The identifiers this node pushes to one correct target this round.
    pub fn emit(&mut self, all_malicious_ids: &[NodeId]) -> Vec<NodeId> {
        match self.strategy {
            MaliciousStrategy::Silent => Vec::new(),
            MaliciousStrategy::SelfPromotion { batch_per_round } => (0..batch_per_round)
                .map(|_| all_malicious_ids[self.rng.gen_range(0..all_malicious_ids.len())])
                .collect(),
            MaliciousStrategy::Flood { distinct_sybils, batch_per_round } => {
                let pool = distinct_sybils.max(1);
                (0..batch_per_round)
                    .map(|_| {
                        let sybil = SYBIL_ID_BASE + 1_000_000 + (self.cursor % pool) as u64;
                        self.cursor = self.cursor.wrapping_add(1);
                        NodeId::new(sybil)
                    })
                    .collect()
            }
        }
    }
}

/// `true` when an identifier belongs to the adversary (a real malicious
/// node or one of its sybils).
pub fn is_malicious_id(id: NodeId) -> bool {
    id.as_u64() >= SYBIL_ID_BASE
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn silent_nodes_emit_nothing() {
        let mut node = MaliciousNode::new(0, MaliciousStrategy::Silent, 1);
        assert!(node.emit(&[node.id()]).is_empty());
    }

    #[test]
    fn flood_cycles_through_exactly_the_purchased_sybils() {
        let mut node = MaliciousNode::new(
            0,
            MaliciousStrategy::Flood { distinct_sybils: 5, batch_per_round: 3 },
            2,
        );
        let mut seen: HashSet<u64> = HashSet::new();
        for _ in 0..10 {
            for id in node.emit(&[]) {
                assert!(is_malicious_id(id));
                seen.insert(id.as_u64());
            }
        }
        assert_eq!(seen.len(), 5, "flood must use exactly the distinct sybils paid for");
    }

    #[test]
    fn self_promotion_only_uses_real_malicious_ids() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId::new(SYBIL_ID_BASE + i)).collect();
        let mut node =
            MaliciousNode::new(1, MaliciousStrategy::SelfPromotion { batch_per_round: 8 }, 3);
        for id in node.emit(&ids) {
            assert!(ids.contains(&id));
        }
    }

    #[test]
    fn malicious_ids_are_disjoint_from_correct_ids() {
        assert!(!is_malicious_id(NodeId::new(0)));
        assert!(!is_malicious_id(NodeId::new(1_000_000)));
        assert!(is_malicious_id(NodeId::new(SYBIL_ID_BASE)));
        let node = MaliciousNode::new(7, MaliciousStrategy::Silent, 0);
        assert!(is_malicious_id(node.id()));
    }

    #[test]
    fn emissions_are_deterministic_per_seed() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId::new(SYBIL_ID_BASE + i)).collect();
        let strategy = MaliciousStrategy::SelfPromotion { batch_per_round: 5 };
        let mut a = MaliciousNode::new(0, strategy, 9);
        let mut b = MaliciousNode::new(0, strategy, 9);
        assert_eq!(a.emit(&ids), b.emit(&ids));
    }
}
