//! The Byzantine adversary (§III-B): colluding malicious nodes that inject
//! identifiers into correct nodes' input streams.
//!
//! The adversary controls `ℓ` real malicious nodes but can mint many more
//! *sybil identifiers* (each certified identifier has a creation cost —
//! that cost is exactly the §V effort `L_{k,s}`/`E_k`). Every gossip round,
//! each malicious node pushes a batch of identifiers to every correct node
//! it can reach.
//!
//! Two adversary classes live here:
//!
//! * **static** strategies ([`MaliciousStrategy::Flood`],
//!   [`MaliciousStrategy::SelfPromotion`]) fix their emission policy up
//!   front — the attacker of the paper's closed-form analysis;
//! * the **adaptive** attacker ([`AdaptiveFlooder`],
//!   [`MaliciousStrategy::AdaptiveFlood`]) exploits the full §III-B power:
//!   the adversary *observes the system* (sampler outputs gossiped back as
//!   views, service `Busy` replies) and retargets its flooding every round
//!   toward the sybils the sampler is currently admitting — exactly the
//!   identifiers whose sketch estimates are still close to the sampling
//!   floor, i.e. the under-estimated ones.
//!
//! Honest-population dynamics (§III-C churn before `T₀`) are modeled by
//! [`ChurnEngine`]: seeded joins and leaves over a fixed identifier domain,
//! deterministic seed for seed, so conformance scenarios that interleave
//! churn with adversarial traffic replay bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uns_core::NodeId;

/// Base value for sybil identifiers, far above any correct-node identifier
/// so contamination is measurable.
pub const SYBIL_ID_BASE: u64 = 1 << 32;

/// What the adversary's nodes send each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaliciousStrategy {
    /// Flood: cycle through `distinct_sybils` identifiers, sending
    /// `batch_per_round` of them to every reachable correct node per round.
    /// `distinct_sybils` is the §V "effort"; compare it against
    /// `E_k`/`L_{k,s}` to reproduce the effort analysis in vivo.
    Flood {
        /// Number of distinct sybil identifiers the adversary paid for.
        distinct_sybils: usize,
        /// Identifiers pushed to each correct node per round.
        batch_per_round: usize,
    },
    /// Self-promotion: all malicious nodes push only their own `ℓ` real
    /// identifiers (a hub/eclipse attempt as in Jesi et al.).
    SelfPromotion {
        /// Identifiers pushed to each correct node per round.
        batch_per_round: usize,
    },
    /// Adaptive flooding: the node runs an [`AdaptiveFlooder`] over the
    /// shared sybil pool, observing correct nodes' views (pushed to the
    /// adversary by the gossip protocol itself) via
    /// [`MaliciousNode::observe`] and concentrating each round's batch on
    /// the sybils the samplers are demonstrably admitting.
    AdaptiveFlood {
        /// Number of distinct sybil identifiers the adversary paid for.
        distinct_sybils: usize,
        /// Identifiers pushed to each correct node per round.
        batch_per_round: usize,
    },
    /// The adversary stays silent (baseline overlay behaviour).
    Silent,
}

impl Default for MaliciousStrategy {
    /// A moderate flood: 100 distinct sybils, 10 pushes per node per round.
    fn default() -> Self {
        MaliciousStrategy::Flood { distinct_sybils: 100, batch_per_round: 10 }
    }
}

/// The adaptive attacker of the paper's collusion model: floods a fixed
/// pool of purchased sybil identifiers, but *retargets* its effort from
/// whatever it can observe of the sampling services under attack.
///
/// The observation channels are the ones a real §III-B adversary has:
///
/// * **sampler outputs** ([`AdaptiveFlooder::observe_outputs`]) — in the
///   overlay, correct nodes push their views (= sampler memory `Γ`) to
///   gossip partners including malicious ones; against the networked
///   service, output samples simply come back on the wire. A sybil that
///   shows up in outputs was *admitted*, which under Algorithm 3 means its
///   estimate `f̂` is still close to the sampling floor `min_σ` — it is
///   under-estimated, and flooding it is currently cheap;
/// * **backpressure** ([`AdaptiveFlooder::observe_rejections`]) — `Busy`
///   replies or refused pushes. A saturated victim admits nothing, so the
///   attacker spends the next round purely rotating (keeping every sybil's
///   certificate warm) instead of wasting concentrated effort.
///
/// Every round [`AdaptiveFlooder::emit`] splits its batch between
/// *exploitation* (uniform over the currently best-scoring sybils) and
/// *exploration* (cursor rotation over the whole pool, which discovers
/// sybils whose estimates the growing floor has overtaken). Scores decay
/// by halving each round so the targeting tracks a recent window.
///
/// Fully deterministic: same seed and same observation sequence ⇒ same
/// emissions, on every platform (coins come from the portable ChaCha12
/// [`StdRng`]).
#[derive(Clone, Debug)]
pub struct AdaptiveFlooder {
    first_sybil_id: u64,
    distinct: usize,
    batch: usize,
    /// Output appearances per sybil in the current observation window.
    scores: Vec<u32>,
    /// Rejections (Busy replies / refused pushes) since the last emit.
    rejections: u64,
    cursor: usize,
    rng: StdRng,
}

impl AdaptiveFlooder {
    /// Creates the flooder over the sybil pool
    /// `first_sybil_id .. first_sybil_id + distinct`, emitting `batch`
    /// identifiers per [`AdaptiveFlooder::emit`], with coins derived from
    /// `seed`.
    pub fn new(first_sybil_id: u64, distinct: usize, batch: usize, seed: u64) -> Self {
        let distinct = distinct.max(1);
        Self {
            first_sybil_id,
            distinct,
            batch,
            scores: vec![0; distinct],
            rejections: 0,
            cursor: 0,
            rng: StdRng::seed_from_u64(seed ^ ADAPTIVE_SEED_DOMAIN),
        }
    }

    /// The sybil identifiers this flooder cycles through.
    pub fn sybil_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.first_sybil_id..self.first_sybil_id + self.distinct as u64).map(NodeId::new)
    }

    /// Number of distinct sybil identifiers (the §V effort).
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Feeds observed sampler outputs (or gossiped views) back into the
    /// targeting scores. Non-sybil identifiers are ignored.
    pub fn observe_outputs(&mut self, outputs: &[NodeId]) {
        for &id in outputs {
            let raw = id.as_u64();
            if raw >= self.first_sybil_id {
                if let Ok(idx) = usize::try_from(raw - self.first_sybil_id) {
                    if idx < self.distinct {
                        self.scores[idx] = self.scores[idx].saturating_add(1);
                    }
                }
            }
        }
    }

    /// Reports `n` rejections (service `Busy` replies, refused pushes)
    /// observed since the last emission; the next round backs off to pure
    /// rotation.
    pub fn observe_rejections(&mut self, n: u64) {
        self.rejections = self.rejections.saturating_add(n);
    }

    /// How many sybils the exploitation half concentrates on.
    fn exploit_pool(&self) -> usize {
        (self.distinct / 8).max(1)
    }

    /// Emits one round's batch: half exploitation (uniform over the
    /// top-scoring sybils, ties broken toward smaller identifiers), half
    /// exploration (pool rotation) — or pure rotation after observed
    /// backpressure. Decays the observation window afterwards.
    pub fn emit(&mut self) -> Vec<NodeId> {
        let backoff = self.rejections > 0;
        self.rejections = 0;
        let exploit_slots = if backoff { 0 } else { self.batch / 2 };

        // Rank sybils by observed admissions, ties toward the smaller id
        // (stable sort over an index vector keeps this deterministic).
        let mut ranked: Vec<usize> = (0..self.distinct).collect();
        ranked.sort_by(|&a, &b| self.scores[b].cmp(&self.scores[a]).then(a.cmp(&b)));
        let targets = &ranked[..self.exploit_pool().min(ranked.len())];

        let mut out = Vec::with_capacity(self.batch);
        for slot in 0..self.batch {
            let idx = if slot < exploit_slots && !targets.is_empty() {
                targets[self.rng.gen_range(0..targets.len())]
            } else {
                let idx = self.cursor % self.distinct;
                self.cursor = self.cursor.wrapping_add(1);
                idx
            };
            out.push(NodeId::new(self.first_sybil_id + idx as u64));
        }
        // Halve the window so stale admissions stop steering the attack.
        for score in &mut self.scores {
            *score /= 2;
        }
        out
    }
}

/// Seed-domain separator: adaptive-flooder coins never collide with the
/// coins of a static strategy built from the same master seed.
const ADAPTIVE_SEED_DOMAIN: u64 = 0xada9_71fe_5eed_0001;

/// A real malicious node (one of the `ℓ` the adversary controls).
#[derive(Clone, Debug)]
pub struct MaliciousNode {
    id: NodeId,
    strategy: MaliciousStrategy,
    rng: StdRng,
    /// Rotating cursor over the sybil pool so floods cycle through all
    /// purchased identifiers.
    cursor: usize,
    /// The adaptive engine, present only for
    /// [`MaliciousStrategy::AdaptiveFlood`].
    adaptive: Option<AdaptiveFlooder>,
}

impl MaliciousNode {
    /// Creates malicious node `index` (of `ℓ`) with its own identifier and
    /// deterministic coins.
    pub fn new(index: usize, strategy: MaliciousStrategy, seed: u64) -> Self {
        let node_seed = seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let adaptive = match strategy {
            MaliciousStrategy::AdaptiveFlood { distinct_sybils, batch_per_round } => {
                Some(AdaptiveFlooder::new(
                    SYBIL_ID_BASE + 1_000_000,
                    distinct_sybils,
                    batch_per_round,
                    node_seed,
                ))
            }
            _ => None,
        };
        Self {
            id: NodeId::new(SYBIL_ID_BASE + index as u64),
            strategy,
            rng: StdRng::seed_from_u64(node_seed),
            cursor: 0,
            adaptive,
        }
    }

    /// This node's own (certified) identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Feeds observed correct-node views / sampler outputs to the node's
    /// adaptive engine. A no-op for the static strategies — the colluding
    /// adversary observes everything either way, the static attackers just
    /// don't act on it.
    pub fn observe(&mut self, outputs: &[NodeId]) {
        if let Some(adaptive) = &mut self.adaptive {
            adaptive.observe_outputs(outputs);
        }
    }

    /// The identifiers this node pushes to one correct target this round.
    pub fn emit(&mut self, all_malicious_ids: &[NodeId]) -> Vec<NodeId> {
        match self.strategy {
            MaliciousStrategy::Silent => Vec::new(),
            MaliciousStrategy::SelfPromotion { batch_per_round } => (0..batch_per_round)
                .map(|_| all_malicious_ids[self.rng.gen_range(0..all_malicious_ids.len())])
                .collect(),
            MaliciousStrategy::Flood { distinct_sybils, batch_per_round } => {
                let pool = distinct_sybils.max(1);
                (0..batch_per_round)
                    .map(|_| {
                        let sybil = SYBIL_ID_BASE + 1_000_000 + (self.cursor % pool) as u64;
                        self.cursor = self.cursor.wrapping_add(1);
                        NodeId::new(sybil)
                    })
                    .collect()
            }
            MaliciousStrategy::AdaptiveFlood { .. } => {
                self.adaptive.as_mut().expect("adaptive strategy carries its engine").emit()
            }
        }
    }
}

/// Seeded join/leave dynamics of the honest population (§III-C churn
/// before `T₀`) over the fixed identifier domain `0 .. domain`.
///
/// The engine tracks which identifiers are currently *alive* (present in
/// the system and emitting traffic). [`ChurnEngine::step`] applies a batch
/// of leaves and joins; [`ChurnEngine::sample_alive`] draws a uniformly
/// random live identifier — the honest-traffic generator of churn
/// scenarios. Everything is deterministic seed for seed: the same seed and
/// the same call sequence reproduce the same population trajectory and the
/// same traffic, on every platform.
#[derive(Clone, Debug)]
pub struct ChurnEngine {
    alive: Vec<bool>,
    /// Identifiers alive at engine construction — late joiners have
    /// partial histories, so they can never become *core* (see
    /// [`ChurnEngine::core_flags`]).
    initially_alive: Vec<bool>,
    /// Identifiers that departed at least once — even if they rejoined,
    /// their history has a gap, so they are no longer *core* (see
    /// [`ChurnEngine::core_flags`]).
    departed_once: Vec<bool>,
    alive_count: usize,
    rng: StdRng,
}

impl ChurnEngine {
    /// Creates the engine with identifiers `0 .. alive` initially alive out
    /// of the domain `0 .. domain` (`alive` is clamped to the domain, and
    /// at least one identifier is kept alive).
    pub fn new(domain: usize, alive: usize, seed: u64) -> Self {
        let domain = domain.max(1);
        let alive_count = alive.clamp(1, domain);
        let mut flags = vec![false; domain];
        for flag in flags.iter_mut().take(alive_count) {
            *flag = true;
        }
        Self {
            initially_alive: flags.clone(),
            alive: flags,
            departed_once: vec![false; domain],
            alive_count,
            rng: StdRng::seed_from_u64(seed ^ 0xc4u64.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Applies one churn round: `leaves` uniformly chosen live identifiers
    /// depart (never below one survivor), then `joins` uniformly chosen
    /// dead identifiers rejoin.
    pub fn step(&mut self, joins: usize, leaves: usize) {
        for _ in 0..leaves {
            if self.alive_count <= 1 {
                break;
            }
            if let Some(idx) = self.pick(|e, i| e.alive[i]) {
                self.alive[idx] = false;
                self.departed_once[idx] = true;
                self.alive_count -= 1;
            }
        }
        for _ in 0..joins {
            if self.alive_count == self.alive.len() {
                break;
            }
            if let Some(idx) = self.pick(|e, i| !e.alive[i]) {
                self.alive[idx] = true;
                self.alive_count += 1;
            }
        }
    }

    /// Replacement churn: `leaves` *core* identifiers (alive since
    /// inception, no prior departure) leave for good, and `joins` *fresh*
    /// identifiers (never alive before) arrive. This models node
    /// replacement — veterans depart, newcomers join — and guarantees
    /// every identifier's lifetime is one contiguous interval: no id ever
    /// accumulates a pathologically short occurrence history. That
    /// invariant is what keeps an accurate estimator's sampling floor
    /// `min_σ` (anchored at the least-counted identifier ever seen) from
    /// collapsing, so post-churn admission rates — and with them Algorithm
    /// 3's freshness — stay predictable; the conformance churn scenario
    /// depends on it. Runs out of core or fresh candidates simply stop
    /// the respective flow.
    pub fn step_replacement(&mut self, joins: usize, leaves: usize) {
        for _ in 0..leaves {
            if self.alive_count <= 1 {
                break;
            }
            let Some(idx) = self.pick(|e, i| e.alive[i] && e.initially_alive[i]) else { break };
            self.alive[idx] = false;
            self.departed_once[idx] = true;
            self.alive_count -= 1;
        }
        for _ in 0..joins {
            let Some(idx) =
                self.pick(|e, i| !e.alive[i] && !e.initially_alive[i] && !e.departed_once[i])
            else {
                break;
            };
            self.alive[idx] = true;
            self.alive_count += 1;
        }
    }

    /// Uniform choice among the identifiers satisfying `eligible`, by
    /// index. The population is small (a scenario domain), so an exact
    /// index collection beats rejection loops whose coin usage would
    /// depend on the eligible fraction.
    fn pick(&mut self, eligible: impl Fn(&Self, usize) -> bool) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.alive.len()).filter(|&i| eligible(self, i)).collect();
        if candidates.is_empty() {
            return None;
        }
        Some(candidates[self.rng.gen_range(0..candidates.len())])
    }

    /// Whether `id` is currently alive (`false` for ids outside the
    /// domain).
    pub fn is_alive(&self, id: u64) -> bool {
        usize::try_from(id).ok().and_then(|i| self.alive.get(i)).copied().unwrap_or(false)
    }

    /// Number of identifiers currently alive.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// The per-identifier alive flags, indexed by identifier.
    pub fn alive_flags(&self) -> &[bool] {
        &self.alive
    }

    /// The *core* population: identifiers alive since engine construction
    /// with no departure gap. These are the ids whose occurrence histories
    /// are statistically exchangeable, i.e. the ones a stationary
    /// uniformity claim is about — a late joiner's (or rejoiner's)
    /// cumulative frequency is legitimately lower, so an accurate
    /// estimator admits it more often until its history catches up (the
    /// paper's freshness at work, not a uniformity violation).
    pub fn core_flags(&self) -> Vec<bool> {
        self.alive
            .iter()
            .zip(&self.initially_alive)
            .zip(&self.departed_once)
            .map(|((&alive, &initial), &departed)| alive && initial && !departed)
            .collect()
    }

    /// Draws one uniformly random *live* identifier.
    pub fn sample_alive(&mut self) -> NodeId {
        let nth = self.rng.gen_range(0..self.alive_count as u64);
        let mut seen = 0u64;
        for (idx, &alive) in self.alive.iter().enumerate() {
            if alive {
                if seen == nth {
                    return NodeId::new(idx as u64);
                }
                seen += 1;
            }
        }
        unreachable!("alive_count is kept >= 1 and consistent with the flags")
    }
}

/// `true` when an identifier belongs to the adversary (a real malicious
/// node or one of its sybils).
pub fn is_malicious_id(id: NodeId) -> bool {
    id.as_u64() >= SYBIL_ID_BASE
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn silent_nodes_emit_nothing() {
        let mut node = MaliciousNode::new(0, MaliciousStrategy::Silent, 1);
        assert!(node.emit(&[node.id()]).is_empty());
    }

    #[test]
    fn flood_cycles_through_exactly_the_purchased_sybils() {
        let mut node = MaliciousNode::new(
            0,
            MaliciousStrategy::Flood { distinct_sybils: 5, batch_per_round: 3 },
            2,
        );
        let mut seen: HashSet<u64> = HashSet::new();
        for _ in 0..10 {
            for id in node.emit(&[]) {
                assert!(is_malicious_id(id));
                seen.insert(id.as_u64());
            }
        }
        assert_eq!(seen.len(), 5, "flood must use exactly the distinct sybils paid for");
    }

    #[test]
    fn self_promotion_only_uses_real_malicious_ids() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId::new(SYBIL_ID_BASE + i)).collect();
        let mut node =
            MaliciousNode::new(1, MaliciousStrategy::SelfPromotion { batch_per_round: 8 }, 3);
        for id in node.emit(&ids) {
            assert!(ids.contains(&id));
        }
    }

    #[test]
    fn malicious_ids_are_disjoint_from_correct_ids() {
        assert!(!is_malicious_id(NodeId::new(0)));
        assert!(!is_malicious_id(NodeId::new(1_000_000)));
        assert!(is_malicious_id(NodeId::new(SYBIL_ID_BASE)));
        let node = MaliciousNode::new(7, MaliciousStrategy::Silent, 0);
        assert!(is_malicious_id(node.id()));
    }

    #[test]
    fn emissions_are_deterministic_per_seed() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId::new(SYBIL_ID_BASE + i)).collect();
        let strategy = MaliciousStrategy::SelfPromotion { batch_per_round: 5 };
        let mut a = MaliciousNode::new(0, strategy, 9);
        let mut b = MaliciousNode::new(0, strategy, 9);
        assert_eq!(a.emit(&ids), b.emit(&ids));
    }

    /// Golden emissions: the exact identifier sequences for a fixed seed,
    /// pinned across runs *and platforms*. All coins come from the
    /// portable ChaCha12 `StdRng`, so these values must never drift; a
    /// failure here means the adversary model silently changed and every
    /// seeded scenario in the conformance harness changed with it.
    #[test]
    fn emissions_match_pinned_golden_values() {
        let ids: Vec<NodeId> = (0..4).map(|i| NodeId::new(SYBIL_ID_BASE + i)).collect();

        // Flood is pure pool rotation: position-determined, coin-free.
        let mut flood = MaliciousNode::new(
            0,
            MaliciousStrategy::Flood { distinct_sybils: 3, batch_per_round: 4 },
            42,
        );
        let base = SYBIL_ID_BASE + 1_000_000;
        assert_eq!(flood.emit(&ids), [base, base + 1, base + 2, base].map(NodeId::new).to_vec());
        assert_eq!(
            flood.emit(&ids),
            [base + 1, base + 2, base, base + 1].map(NodeId::new).to_vec()
        );

        // Self-promotion draws coins; pin the ChaCha12-derived choices.
        let mut promo =
            MaliciousNode::new(1, MaliciousStrategy::SelfPromotion { batch_per_round: 6 }, 42);
        let promoted: Vec<u64> =
            promo.emit(&ids).into_iter().map(|id| id.as_u64() - SYBIL_ID_BASE).collect();
        assert_eq!(promoted, golden::SELF_PROMOTION_SEED42_NODE1);

        // The adaptive flooder before any observation: explore half rotates
        // from the pool start, exploit half draws among the (all-zero-score,
        // ties-to-smallest) leading pool ids.
        let mut adaptive = MaliciousNode::new(
            0,
            MaliciousStrategy::AdaptiveFlood { distinct_sybils: 8, batch_per_round: 6 },
            42,
        );
        let emitted: Vec<u64> =
            adaptive.emit(&ids).into_iter().map(|id| id.as_u64() - base).collect();
        assert_eq!(emitted, golden::ADAPTIVE_SEED42_NODE0_ROUND0);
    }

    /// `is_malicious_id` boundary identifiers: the exact edge of the sybil
    /// range, and both extremes of the u64 domain.
    #[test]
    fn is_malicious_id_boundaries() {
        assert!(!is_malicious_id(NodeId::new(0)));
        assert!(!is_malicious_id(NodeId::new(SYBIL_ID_BASE - 1)));
        assert!(is_malicious_id(NodeId::new(SYBIL_ID_BASE)));
        assert!(is_malicious_id(NodeId::new(SYBIL_ID_BASE + 1)));
        assert!(is_malicious_id(NodeId::new(u64::MAX)));
    }

    #[test]
    fn adaptive_flooder_is_deterministic_and_observation_driven() {
        let make = || AdaptiveFlooder::new(1_000, 16, 10, 7);
        let mut a = make();
        let mut b = make();
        // Identical with identical observation histories…
        assert_eq!(a.emit(), b.emit());
        let observed: Vec<NodeId> = vec![NodeId::new(1_005); 8];
        a.observe_outputs(&observed);
        b.observe_outputs(&observed);
        assert_eq!(a.emit(), b.emit());
        // …and the observations matter: diverging histories diverge the
        // exploitation half.
        let mut c = make();
        let _ = c.emit();
        c.observe_outputs(&[NodeId::new(1_011); 8]);
        assert_ne!(a.emit(), c.emit());
    }

    #[test]
    fn adaptive_flooder_retargets_toward_admitted_sybils() {
        let mut flooder = AdaptiveFlooder::new(500, 32, 40, 3);
        let _ = flooder.emit();
        // The victim keeps emitting sybil 517: it is being admitted, i.e.
        // currently under-estimated. The next round must concentrate on it.
        flooder.observe_outputs(&vec![NodeId::new(517); 50]);
        let batch = flooder.emit();
        let hits = batch.iter().filter(|id| id.as_u64() == 517).count();
        // The exploit half (20 slots) draws uniformly over the top
        // distinct/8 = 4 scorers, of which 517 is the only nonzero one —
        // but ties fill the remaining 3 slots, so expect ≈ 20/4 = 5 hits
        // plus whatever rotation contributes (exactly 1 in 40 slots).
        assert!(hits >= 3, "only {hits} of {} slots target the admitted sybil", batch.len());
        // Everything emitted stays inside the purchased pool.
        assert!(batch.iter().all(|id| (500..532).contains(&id.as_u64())));
    }

    #[test]
    fn adaptive_flooder_backs_off_after_rejections() {
        let mut pressured = AdaptiveFlooder::new(0, 8, 8, 11);
        let mut calm = AdaptiveFlooder::new(0, 8, 8, 11);
        let _ = pressured.emit();
        let _ = calm.emit();
        pressured.observe_rejections(5);
        // The backoff round is pure rotation: position-determined, no
        // exploitation draws.
        let backed_off = pressured.emit();
        // Round 0 consumed cursor positions 0..4 on its explore half.
        let rotation: Vec<u64> = (4..12u64).map(|c| c % 8).collect();
        assert_eq!(backed_off.iter().map(|id| id.as_u64()).collect::<Vec<_>>(), rotation);
        // Without rejections the same round exploits (draws coins).
        assert_ne!(backed_off, calm.emit());
        // The pressure is consumed: the following round exploits again.
        assert_eq!(pressured.emit().len(), 8);
    }

    #[test]
    fn churn_engine_is_deterministic_and_conserves_invariants() {
        let mut a = ChurnEngine::new(50, 30, 9);
        let mut b = ChurnEngine::new(50, 30, 9);
        for round in 0..40 {
            a.step(2, 3);
            b.step(2, 3);
            assert_eq!(a.alive_flags(), b.alive_flags(), "diverged at round {round}");
            assert_eq!(a.sample_alive(), b.sample_alive());
            let count = a.alive_flags().iter().filter(|&&f| f).count();
            assert_eq!(count, a.alive_count());
            assert!(a.alive_count() >= 1);
        }
        // Net -1 per round from 30 alive: the floor of one survivor holds.
        for _ in 0..100 {
            a.step(0, 5);
        }
        assert_eq!(a.alive_count(), 1);
        // And joins refill up to the domain, never past it.
        for _ in 0..100 {
            a.step(5, 0);
        }
        assert_eq!(a.alive_count(), 50);
    }

    #[test]
    fn churn_engine_samples_only_live_ids() {
        let mut engine = ChurnEngine::new(20, 20, 4);
        engine.step(0, 12);
        for _ in 0..200 {
            let id = engine.sample_alive();
            assert!(engine.is_alive(id.as_u64()), "sampled dead id {id}");
        }
        assert!(!engine.is_alive(20), "out-of-domain id is never alive");
        assert!(!engine.is_alive(u64::MAX));
    }

    /// Pinned coin-dependent golden sequences (values observed once under
    /// the vendored ChaCha12 `StdRng`, then frozen).
    mod golden {
        pub const SELF_PROMOTION_SEED42_NODE1: &[u64] = &[0, 3, 0, 3, 2, 2];
        pub const ADAPTIVE_SEED42_NODE0_ROUND0: &[u64] = &[0, 0, 0, 0, 1, 2];
    }
}
