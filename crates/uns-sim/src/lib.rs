#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A gossip overlay simulator for the uniform node sampling service of
//! Anceaume, Busnel and Sericola (DSN 2013).
//!
//! The paper's sampling service is a *local component*: each correct node
//! feeds it the stream of identifiers it receives from the overlay (§IV,
//! Fig. 1), and in turn uses its output to build the local views of
//! epidemic protocols. The paper analyses the service in isolation ("the
//! analysis is independent from the way data streams are built"); this
//! crate supplies the surrounding distributed system so the service can be
//! exercised end-to-end:
//!
//! * a **cycle-based gossip protocol** (PeerSim-style): every round each
//!   correct node pushes its own identifier and its current view to
//!   `fanout` partners drawn from its view;
//! * **views built by the sampling service**: a node's view is the content
//!   of its sampler memory `Γ`, closing the loop the paper describes
//!   (sampler output feeds overlay connectivity);
//! * a **Byzantine adversary** controlling `ℓ` colluding nodes that flood
//!   correct nodes with sybil identifiers (§III-B), with configurable
//!   effort (distinct sybils) and rate (repetitions per round);
//! * **churn until `T₀`** (§III-C): during a warm-up phase correct nodes
//!   are replaced at a configurable rate, then the population stabilizes;
//! * **metrics**: per-node output divergence from uniform, sybil
//!   contamination of views, in-degree statistics and weak connectivity of
//!   the correct-node subgraph (the paper's §I motivation — a partitioned
//!   overlay is the attack's payoff);
//! * **sharded ingestion** ([`ShardedIngestion`]): multi-million-element
//!   backlogs split across worker threads into same-seed Count-Min
//!   sketches, merged exactly, and used to pre-warm a sampler's frequency
//!   knowledge — the scale the sequential simulator cannot reach;
//! * **adversarial conformance scenarios** ([`conformance`]): the
//!   deterministic scenario matrix (uniform/zipf/targeted-flooding/sybil/
//!   adaptive-flooding/churn) and the thinned χ²/TV uniformity
//!   measurement that `tests/conformance.rs` runs against every execution
//!   path, backed by the adaptive attacker
//!   ([`byzantine::AdaptiveFlooder`]) and churn engine
//!   ([`byzantine::ChurnEngine`]);
//! * the **parallel sampling pipeline**
//!   ([`ShardedIngestion::pipeline_ingest`] /
//!   [`pipeline_feed`](ShardedIngestion::pipeline_feed)): the whole of
//!   Algorithm 3 — sketch *and* coin history over `Γ` — run across worker
//!   threads with output bit-equal to the sequential sampler, plus
//!   [`PipelineStats`] accounting; the simulator's own per-round sampling
//!   pass parallelizes the same way via
//!   [`SimConfigBuilder::ingest_threads`](config::SimConfigBuilder::ingest_threads).
//!
//! # Example
//!
//! ```
//! use uns_sim::{MaliciousStrategy, SamplerKind, SimConfig, Simulation};
//!
//! # fn main() -> Result<(), uns_sim::SimError> {
//! let config = SimConfig::builder()
//!     .correct_nodes(60)
//!     .malicious_nodes(4)
//!     .attack(MaliciousStrategy::Flood { distinct_sybils: 8, batch_per_round: 6 })
//!     .view_size(8)
//!     .fanout(3)
//!     .rounds(30)
//!     .sampler(SamplerKind::KnowledgeFree { width: 10, depth: 4 })
//!     .seed(7)
//!     .build()?;
//! let mut sim = Simulation::new(config)?;
//! let metrics = sim.run();
//! // The adversary delivers a large share of every input stream, yet the
//! // sampling service keeps the sybil share of the overlay's views well
//! // below the share it injected.
//! assert!(metrics.mean_sybil_input_share > 0.3);
//! assert!(metrics.mean_sybil_view_share < metrics.mean_sybil_input_share);
//! # Ok(())
//! # }
//! ```

pub mod byzantine;
pub mod config;
pub mod conformance;
pub mod error;
pub mod metrics;
pub mod node;
pub mod sharded;
pub mod simulator;
pub mod topology;

pub use byzantine::{AdaptiveFlooder, ChurnEngine, MaliciousStrategy};
pub use config::{SamplerKind, SimConfig, SimConfigBuilder};
pub use conformance::{
    measure_uniformity, min_p_clears, Scenario, ScenarioKind, ScenarioStream, UniformityReport,
};
pub use error::SimError;
pub use metrics::{PipelineSeries, PipelineStats, SimMetrics};
pub use sharded::ShardedIngestion;
pub use simulator::Simulation;
