//! Named, labeled metric families rendered as Prometheus text exposition.

use crate::{Counter, Gauge, LatencyHistogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// What a metric family measures, deciding its exposition `# TYPE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing totals ([`Counter`]).
    Counter,
    /// Instantaneous readings ([`Gauge`]).
    Gauge,
    /// Log-scale latency distributions ([`LatencyHistogram`]).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// The handle stored per series; instrumented code holds the same `Arc`.
enum Primitive {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

struct Series {
    /// Label pairs sorted by key (the canonical order they render in).
    labels: Vec<(String, String)>,
    primitive: Primitive,
}

struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Keyed by the canonical rendered label block, so iteration (and the
    /// rendered exposition) is deterministic.
    series: BTreeMap<String, Series>,
}

/// A registry of metric families, each a set of labeled series.
///
/// Registration (`counter`/`gauge`/`histogram`) locks the registry, pays
/// the allocations, and returns an [`Arc`] handle; registering the same
/// `(name, labels)` again returns the **existing** handle, so re-creating
/// a stream re-binds to its series instead of forking it. The hot path
/// never touches the registry — it bumps the handles.
///
/// [`MetricsRegistry::render`] produces Prometheus text exposition format
/// 0.0.4: families in name order with `# HELP`/`# TYPE` headers, series in
/// canonical label order, label values escaped, histograms as cumulative
/// `_bucket{le=…}` series plus `_sum`/`_count` derived from one consistent
/// bucket read.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("metrics registry lock poisoned");
        f.debug_struct("MetricsRegistry").field("families", &families.len()).finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-binds to) a counter series.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind — two
    /// call sites disagreeing about what a family measures is a bug worth
    /// failing loudly on, not a runtime condition.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let primitive = self.register(name, help, MetricKind::Counter, labels, || {
            Primitive::Counter(Arc::new(Counter::new()))
        });
        match primitive {
            Primitive::Counter(c) => c,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Registers (or re-binds to) a gauge series. Panics like
    /// [`MetricsRegistry::counter`] on a kind mismatch.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let primitive = self.register(name, help, MetricKind::Gauge, labels, || {
            Primitive::Gauge(Arc::new(Gauge::new()))
        });
        match primitive {
            Primitive::Gauge(g) => g,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Registers (or re-binds to) a latency histogram series. Panics like
    /// [`MetricsRegistry::counter`] on a kind mismatch.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<LatencyHistogram> {
        let primitive = self.register(name, help, MetricKind::Histogram, labels, || {
            Primitive::Histogram(Arc::new(LatencyHistogram::new()))
        });
        match primitive {
            Primitive::Histogram(h) => h,
            _ => unreachable!("kind checked by register"),
        }
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Primitive,
    ) -> Primitive {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut sorted: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        sorted.sort();
        let key = label_block(&sorted);
        let mut families = self.families.lock().expect("metrics registry lock poisoned");
        let family =
            families.entry(name).or_insert_with(|| Family { help, kind, series: BTreeMap::new() });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let series = family
            .series
            .entry(key)
            .or_insert_with(|| Series { labels: sorted, primitive: make() });
        match &series.primitive {
            Primitive::Counter(c) => Primitive::Counter(Arc::clone(c)),
            Primitive::Gauge(g) => Primitive::Gauge(Arc::clone(g)),
            Primitive::Histogram(h) => Primitive::Histogram(Arc::clone(h)),
        }
    }

    /// Drops every series carrying the label `key="value"` (e.g. all of a
    /// torn-down stream's series). Handles still held keep working; they
    /// are just no longer rendered.
    pub fn remove_labeled(&self, key: &str, value: &str) {
        let mut families = self.families.lock().expect("metrics registry lock poisoned");
        for family in families.values_mut() {
            family.series.retain(|_, s| !s.labels.iter().any(|(k, v)| k == key && v == value));
        }
    }

    /// Renders the exposition text into `out` (cleared first).
    pub fn render_into(&self, out: &mut String) {
        out.clear();
        let families = self.families.lock().expect("metrics registry lock poisoned");
        for (name, family) in families.iter() {
            if family.series.is_empty() {
                continue;
            }
            let _ = writeln!(out, "# HELP {name} {}", escape_help(family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for series in family.series.values() {
                render_series(out, name, series);
            }
        }
    }

    /// Renders the exposition text as a fresh string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    let block = label_block(&series.labels);
    match &series.primitive {
        Primitive::Counter(c) => {
            let _ = writeln!(out, "{name}{} {}", braced(&block), c.get());
        }
        Primitive::Gauge(g) => {
            let _ = writeln!(out, "{name}{} {}", braced(&block), g.get());
        }
        Primitive::Histogram(h) => {
            let (counts, sum) = h.snapshot();
            let mut cumulative = 0u64;
            for (index, count) in counts.iter().enumerate() {
                cumulative += count;
                let le = LatencyHistogram::bucket_bound(index);
                let with_le = if block.is_empty() {
                    format!("le=\"{le}\"")
                } else {
                    format!("{block},le=\"{le}\"")
                };
                let _ = writeln!(out, "{name}_bucket{{{with_le}}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_sum{} {sum}", braced(&block));
            let _ = writeln!(out, "{name}_count{} {cumulative}", braced(&block));
        }
    }
}

/// The canonical label block (no braces): `k1="v1",k2="v2"`, values escaped.
fn label_block(labels: &[(String, String)]) -> String {
    let mut block = String::new();
    for (index, (key, value)) in labels.iter().enumerate() {
        if index > 0 {
            block.push(',');
        }
        let _ = write!(block, "{key}=\"{}\"", escape_label_value(value));
    }
    block
}

/// Wraps a non-empty label block in braces; an empty block renders as
/// nothing (`name 42`, not `name{} 42`).
fn braced(block: &str) -> String {
    if block.is_empty() {
        String::new()
    } else {
        format!("{{{block}}}")
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_render_is_byte_exact() {
        // Families render in name order, series in canonical label order,
        // HELP/TYPE once per family, escaping per the 0.0.4 format spec.
        let registry = MetricsRegistry::new();
        let b = registry.counter("b_total", "Second family.", &[]);
        b.add(7);
        // Registered out of label order on purpose: the render sorts.
        let a2 =
            registry.counter("a_total", "First family.", &[("stream", "zeta"), ("op", "feed")]);
        let a1 =
            registry.counter("a_total", "First family.", &[("op", "ingest"), ("stream", "alpha")]);
        a1.add(1);
        a2.add(2);
        let g = registry.gauge("depth", "A gauge.", &[("worker", "0")]);
        g.set(-5);
        let evil = registry.counter("esc_total", "Escapes.", &[("k", "a\\b\"c\nd")]);
        evil.inc();
        let expected = "# HELP a_total First family.\n\
                        # TYPE a_total counter\n\
                        a_total{op=\"feed\",stream=\"zeta\"} 2\n\
                        a_total{op=\"ingest\",stream=\"alpha\"} 1\n\
                        # HELP b_total Second family.\n\
                        # TYPE b_total counter\n\
                        b_total 7\n\
                        # HELP depth A gauge.\n\
                        # TYPE depth gauge\n\
                        depth{worker=\"0\"} -5\n\
                        # HELP esc_total Escapes.\n\
                        # TYPE esc_total counter\n\
                        esc_total{k=\"a\\\\b\\\"c\\nd\"} 1\n";
        assert_eq!(registry.render(), expected);
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_nanos", "Latency.", &[("op", "feed")]);
        h.record(1);
        h.record(3); // le 4
        h.record(3);
        let text = registry.render();
        assert!(text.contains("# TYPE lat_nanos histogram\n"));
        assert!(text.contains("lat_nanos_bucket{op=\"feed\",le=\"1\"} 1\n"));
        assert!(text.contains("lat_nanos_bucket{op=\"feed\",le=\"2\"} 1\n"));
        assert!(text.contains("lat_nanos_bucket{op=\"feed\",le=\"4\"} 3\n"));
        assert!(text.contains("lat_nanos_bucket{op=\"feed\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_nanos_sum{op=\"feed\"} 7\n"));
        assert!(text.contains("lat_nanos_count{op=\"feed\"} 3\n"));
    }

    #[test]
    fn reregistering_returns_the_same_handle() {
        let registry = MetricsRegistry::new();
        let first = registry.counter("x_total", "X.", &[("stream", "s")]);
        first.add(5);
        let second = registry.counter("x_total", "X.", &[("stream", "s")]);
        assert_eq!(second.get(), 5, "same (name, labels) must alias the same series");
        second.inc();
        assert_eq!(first.get(), 6);
    }

    #[test]
    fn remove_labeled_drops_only_matching_series() {
        let registry = MetricsRegistry::new();
        registry.counter("x_total", "X.", &[("stream", "keep")]).inc();
        registry.counter("x_total", "X.", &[("stream", "drop")]).inc();
        registry.gauge("y", "Y.", &[("stream", "drop")]).set(1);
        registry.remove_labeled("stream", "drop");
        let text = registry.render();
        assert!(text.contains("x_total{stream=\"keep\"} 1\n"));
        assert!(!text.contains("drop"));
        // The y family is now empty and renders nothing, not a bare header.
        assert!(!text.contains("# TYPE y gauge"));
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("clash", "A.", &[]);
        registry.gauge("clash", "A.", &[]);
    }
}
