//! A bounded ring of recent structured control-plane events.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What happened. The meaning of an event's `a`/`b` payload words depends
/// on the kind — see each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceKind {
    /// A stream was created (`a` = owning worker, `b` unused).
    StreamCreated,
    /// A stream was restored from a snapshot (`a` = owning worker).
    StreamRestored,
    /// A stream was rebuilt from durable state at startup (`a` = owning
    /// worker, `b` = lifetime recoveries after the rebuild).
    StreamRecovered,
    /// A stream self-healed in place after a panic or broken WAL writer
    /// (`b` = lifetime recoveries after the heal).
    StreamHealed,
    /// A stream was lost: recovery failed or the server is not durable
    /// (`a`/`b` unused).
    StreamLost,
    /// A checkpoint compaction persisted a snapshot and reset the log
    /// (`a` = log bytes before the reset, `b` = lifetime compactions).
    Compaction,
    /// A worker caught a panic from a stream operation (`a` = internal
    /// stream id, `b` unused).
    WorkerPanic,
    /// Fault injection tore a write short (`a` = bytes written, `b` =
    /// bytes requested).
    FaultTornWrite,
    /// Fault injection failed an fsync (`a`/`b` unused).
    FaultFsyncFailed,
    /// Fault injection dropped a reply (`a`/`b` unused).
    FaultReplyDropped,
    /// Fault injection delayed a reply (`a` = delay in milliseconds).
    FaultReplyDelayed,
    /// Fault injection scheduled a worker panic (`a`/`b` unused).
    FaultPanic,
    /// A floor-trajectory sample: the minimum published floor over the
    /// last window of batches (`a` = stream position in elements, `b` =
    /// the window-min floor).
    FloorSample,
    /// A replica attached (or re-attached) to its primary's replication
    /// feed (`a` = the generation attached under, `b` = the sequence the
    /// catch-up started from).
    ReplicaAttach,
    /// A replica promoted itself to primary for a stream (`a` = owning
    /// worker on the promoting node, `b` = the bumped generation).
    Promote,
    /// Fault injection severed a transport for a seeded window (`a` =
    /// window length in transport operations).
    FaultSevered,
    /// A node demoted itself to replica for a stream it had been serving
    /// as primary (`a` = the worker that owned it, `b` unused).
    Demote,
}

impl TraceKind {
    /// Stable lowercase name used in the rendered trace text.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::StreamCreated => "stream_created",
            TraceKind::StreamRestored => "stream_restored",
            TraceKind::StreamRecovered => "stream_recovered",
            TraceKind::StreamHealed => "stream_healed",
            TraceKind::StreamLost => "stream_lost",
            TraceKind::Compaction => "compaction",
            TraceKind::WorkerPanic => "worker_panic",
            TraceKind::FaultTornWrite => "fault_torn_write",
            TraceKind::FaultFsyncFailed => "fault_fsync_failed",
            TraceKind::FaultReplyDropped => "fault_reply_dropped",
            TraceKind::FaultReplyDelayed => "fault_reply_delayed",
            TraceKind::FaultPanic => "fault_panic",
            TraceKind::FloorSample => "floor_sample",
            TraceKind::ReplicaAttach => "replica_attach",
            TraceKind::Promote => "promote",
            TraceKind::FaultSevered => "fault_severed",
            TraceKind::Demote => "demote",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event. `stream` is shared (an `Arc<str>` clone), so
/// pushing an event allocates nothing once the ring is at capacity.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Deterministic sequence number: `seq_base + n` for the ring's n-th
    /// event ever, so two runs with the same seed produce comparable ids.
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
    /// The stream the event concerns (empty for process-wide events).
    pub stream: Arc<str>,
    /// First kind-specific payload word (see [`TraceKind`]).
    pub a: u64,
    /// Second kind-specific payload word (see [`TraceKind`]).
    pub b: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} stream={:?} a={} b={}",
            self.seq, self.kind, &*self.stream, self.a, self.b
        )
    }
}

/// A fixed-capacity ring of the most recent [`TraceEvent`]s.
///
/// Pushing is a mutex lock plus a `VecDeque` rotation — control-plane
/// rates only (creates, heals, compactions, one floor sample per window of
/// batches), never the per-element path. The ring is pre-allocated, so a
/// push at capacity allocates nothing; the oldest event is dropped.
///
/// Sequence numbers are **seeded**: they start at the base passed to
/// [`TraceLog::with_seq_base`] (default 0) and increment by one per event,
/// so runs driven by the same deterministic schedule produce events with
/// identical sequence numbers even after the ring has wrapped.
#[derive(Debug)]
pub struct TraceLog {
    events: Mutex<VecDeque<TraceEvent>>,
    next_seq: AtomicU64,
    capacity: usize,
}

impl TraceLog {
    /// A ring holding the last `capacity` events, sequence base 0.
    pub fn new(capacity: usize) -> Self {
        Self::with_seq_base(capacity, 0)
    }

    /// A ring holding the last `capacity` events, first event numbered
    /// `seq_base`.
    pub fn with_seq_base(capacity: usize, seq_base: u64) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            next_seq: AtomicU64::new(seq_base),
            capacity,
        }
    }

    /// Records an event, dropping the oldest if the ring is full.
    pub fn push(&self, kind: TraceKind, stream: &Arc<str>, a: u64, b: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent { seq, kind, stream: Arc::clone(stream), a, b };
        let mut events = self.events.lock().expect("trace log lock poisoned");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace log lock poisoned").iter().cloned().collect()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace log lock poisoned").len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (`seq_base` subtracted out by the caller
    /// if it needs the count relative to a seeded base).
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Renders the retained events as text, one `#seq kind stream a b`
    /// line per event, oldest first.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for event in self.events() {
            let _ = writeln!(out, "{event}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_seeded_sequence_numbers() {
        let log = TraceLog::with_seq_base(3, 100);
        let stream: Arc<str> = Arc::from("s");
        for i in 0..5u64 {
            log.push(TraceKind::Compaction, &stream, i, 0);
        }
        let events = log.events();
        assert_eq!(events.len(), 3);
        // Oldest two dropped; sequence numbers keep counting from the base.
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![102, 103, 104]);
        assert_eq!(events[0].a, 2);
        assert_eq!(log.next_seq(), 105);
        assert_eq!(log.capacity(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn render_is_one_line_per_event() {
        let log = TraceLog::new(8);
        let stream: Arc<str> = Arc::from("alpha");
        log.push(TraceKind::StreamCreated, &stream, 1, 0);
        log.push(TraceKind::FloorSample, &stream, 4096, 17);
        let text = log.render();
        assert_eq!(
            text,
            "#0 stream_created stream=\"alpha\" a=1 b=0\n\
                          #1 floor_sample stream=\"alpha\" a=4096 b=17\n"
        );
    }
}
