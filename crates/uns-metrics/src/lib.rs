//! Lock-free observability primitives for the sampling service.
//!
//! Three layers, std-only, no dependencies:
//!
//! * **Primitives** — [`Counter`] and [`Gauge`] on relaxed atomics and a
//!   fixed-bucket log-scale [`LatencyHistogram`]: a hot-path update is one
//!   (histograms: two) relaxed `fetch_add`, no locks, no allocation, no
//!   branches beyond the bucket index.
//! * **[`MetricsRegistry`]** — named, labeled metric families rendered as
//!   Prometheus text exposition format (version 0.0.4) from a consistent
//!   per-series snapshot. Registration is locked and pays the allocations;
//!   the returned [`Arc`](std::sync::Arc) handles are what instrumented
//!   code holds, so the
//!   steady-state cost of a registered metric is exactly the primitive's.
//! * **[`TraceLog`]** — a bounded ring of recent structured control-plane
//!   events (stream create/restore/heal, compactions, worker panics, fault
//!   injections, floor-trajectory samples) with seeded-deterministic
//!   sequence numbers, so traces from two runs of the same seed line up.
//!
//! The [`parse`] module is the inverse of the registry's renderer: a small
//! strict parser for the exposition format, used by the tests (golden
//! render must round-trip) and by scrape smoke checks in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parse;
mod registry;
mod trace;

pub use parse::{parse_exposition, ParseError, Sample};
pub use registry::{MetricKind, MetricsRegistry};
pub use trace::{TraceEvent, TraceKind, TraceLog};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` on a relaxed atomic.
///
/// [`Counter::set`] exists for restore/recovery paths that must make the
/// counter agree with persisted totals (a recovered stream resumes its
/// lifetime counts, it does not restart them) — ordinary instrumentation
/// uses only [`Counter::inc`]/[`Counter::add`].
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value — restore/recovery paths only (see type docs).
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// An instantaneous `i64` reading on a relaxed atomic (queue depths, floor
/// estimates). Signed so that concurrent `inc`/`dec` pairs may transiently
/// observe `-1` without wrapping to 2⁶⁴.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds a signed delta (memory-accounting style gauges).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the reading.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Overwrites the reading with a `u64`, saturating at `i64::MAX`.
    #[inline]
    pub fn set_u64(&self, value: u64) {
        self.set(i64::try_from(value).unwrap_or(i64::MAX));
    }

    /// Current reading.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

/// Finite bucket bounds: `2^i` nanoseconds for `i = 0..FINITE_BUCKETS`,
/// i.e. 1 ns up to ~17 s; anything slower lands in the `+Inf` bucket.
const FINITE_BUCKETS: usize = 35;

/// Bucket count including the `+Inf` overflow bucket.
const BUCKETS: usize = FINITE_BUCKETS + 1;

/// A fixed-bucket log₂-scale histogram of nanosecond durations.
///
/// Bucket `i` has upper bound `2^i` ns (35 finite buckets: 1 ns … ~17 s),
/// plus a `+Inf` bucket. Recording is two relaxed `fetch_add`s and a
/// `leading_zeros` — no locks, no allocation, bounded memory. The
/// per-bucket resolution (a factor of 2) is coarse on purpose: latency
/// regressions worth alerting on are multiplicative.
///
/// Rendering reads each bucket once and derives `_count` from that same
/// pass, so the rendered cumulative buckets are always internally
/// consistent; `_sum` is a separate atomic and may lag the buckets by
/// in-flight recordings.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [const { AtomicU64::new(0) }; BUCKETS], sum: AtomicU64::new(0) }
    }

    /// Index of the smallest bucket whose upper bound covers `nanos`.
    #[inline]
    fn bucket_index(nanos: u64) -> usize {
        match nanos {
            0 | 1 => 0,
            n => (64 - (n - 1).leading_zeros() as usize).min(FINITE_BUCKETS),
        }
    }

    /// Records one observation of `nanos`.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one observation of an elapsed [`Duration`].
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations (one pass over the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values, in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// One consistent read of every bucket (non-cumulative) plus the sum,
    /// in bucket order; the renderer and tests share it.
    pub fn snapshot(&self) -> ([u64; BUCKETS], u64) {
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        (counts, self.sum.load(Ordering::Relaxed))
    }

    /// The `le` label value of bucket `index` (`"+Inf"` for the last).
    pub fn bucket_bound(index: usize) -> String {
        if index >= FINITE_BUCKETS {
            "+Inf".to_string()
        } else {
            (1u64 << index).to_string()
        }
    }

    /// Number of buckets, including `+Inf`.
    pub const fn bucket_count() -> usize {
        BUCKETS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.set(7);
        assert_eq!(c.get(), 7);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
        g.set_u64(u64::MAX);
        assert_eq!(g.get(), i64::MAX);
    }

    #[test]
    fn histogram_bucket_bounds_cover_powers_of_two() {
        // Every value must land in the smallest bucket whose bound is >= it.
        for (value, expected) in
            [(0u64, 0usize), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
        {
            assert_eq!(LatencyHistogram::bucket_index(value), expected, "value {value}");
        }
        // Everything past the largest finite bound overflows to +Inf.
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), FINITE_BUCKETS);
        assert_eq!(LatencyHistogram::bucket_index(1 << FINITE_BUCKETS), FINITE_BUCKETS);
        assert_eq!(LatencyHistogram::bucket_index((1 << 34) + 1), FINITE_BUCKETS);
        assert_eq!(LatencyHistogram::bucket_index(1 << 34), FINITE_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let h = LatencyHistogram::new();
        for nanos in [1u64, 3, 900, 900, 1_000_000] {
            h.record(nanos);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_nanos(), 1 + 3 + 900 + 900 + 1_000_000);
        let (counts, _) = h.snapshot();
        assert_eq!(counts[0], 1); // 1 ns
        assert_eq!(counts[2], 1); // 3 ns -> le 4
        assert_eq!(counts[10], 2); // 900 ns -> le 1024
        assert_eq!(counts[20], 1); // 1 ms -> le 2^20
    }
}
