//! A small strict parser for Prometheus text exposition format 0.0.4 —
//! the inverse of [`crate::MetricsRegistry::render`].
//!
//! Exists so correctness is testable end to end: the golden-render tests
//! re-read what the registry rendered and must recover every sample, and
//! the CI scrape smoke check runs real scraped text through it. It parses
//! the subset the registry emits (plus optional timestamps and the
//! standard `summary`/`untyped` types, for tolerance toward other
//! exporters) and rejects anything malformed instead of guessing.

use std::fmt;

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms: the `_bucket`/`_sum`/`_count` series
    /// name as rendered).
    pub name: String,
    /// Label pairs in the order they appeared, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value as a float (every exposition value is one).
    pub value: f64,
    /// The untouched value token — integer-valued counters compare
    /// bit-for-bit through this, no float round-trip.
    pub raw_value: String,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The raw value parsed as an exact `u64` (`None` when the value was
    /// not rendered as a plain unsigned integer).
    pub fn value_u64(&self) -> Option<u64> {
        self.raw_value.parse().ok()
    }
}

/// Finds the first sample named `name` carrying every label pair in
/// `labels` (subset match — the sample may have more labels).
pub fn find<'a>(samples: &'a [Sample], name: &str, labels: &[(&str, &str)]) -> Option<&'a Sample> {
    samples.iter().find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(v)))
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a full exposition text into its samples.
///
/// `# HELP`/`# TYPE` lines are validated (name syntax, known type token)
/// but not returned; other comment lines are skipped per the format spec.
///
/// # Errors
///
/// [`ParseError`] on the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut samples = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let number = index + 1;
        let err = |message: String| ParseError { line: number, message };
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !valid_name(name) {
                    return Err(err(format!("HELP for invalid metric name {name:?}")));
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut words = rest.split_whitespace();
                let name = words.next().unwrap_or("");
                let kind = words.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(err(format!("TYPE for invalid metric name {name:?}")));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(err(format!("unknown TYPE {kind:?} for metric {name:?}")));
                }
            }
            // Any other comment is free text per the spec.
            continue;
        }
        samples.push(parse_sample(line).map_err(err)?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let line = line.trim_end();
    let (name, rest) = split_name(line)?;
    let (labels, rest) = if let Some(after_brace) = rest.strip_prefix('{') {
        parse_labels(after_brace)?
    } else {
        (Vec::new(), rest)
    };
    let mut tokens = rest.split_whitespace();
    let raw_value =
        tokens.next().ok_or_else(|| format!("sample {name:?} has no value"))?.to_string();
    // An optional integer timestamp may follow; anything further is junk.
    if let Some(timestamp) = tokens.next() {
        if timestamp.parse::<i64>().is_err() {
            return Err(format!("sample {name:?} has a malformed timestamp {timestamp:?}"));
        }
    }
    if tokens.next().is_some() {
        return Err(format!("sample {name:?} has trailing tokens"));
    }
    let value = parse_value(&raw_value)
        .ok_or_else(|| format!("sample {name:?} has a malformed value {raw_value:?}"))?;
    Ok(Sample { name: name.to_string(), labels, value, raw_value })
}

/// Splits the leading metric name off a sample line.
fn split_name(line: &str) -> Result<(&str, &str), String> {
    let end = line
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .map_or(line.len(), |(i, _)| i);
    let (name, rest) = line.split_at(end);
    if !valid_name(name) {
        return Err(format!("invalid metric name at {line:?}"));
    }
    Ok((name, rest))
}

/// Label pairs as parsed from one sample line.
type LabelPairs = Vec<(String, String)>;

/// Parses `key="value",…}` (the opening brace already consumed), returning
/// the pairs and the text after the closing brace.
fn parse_labels(mut rest: &str) -> Result<(LabelPairs, &str), String> {
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start_matches(',');
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = rest[eq + 1..].strip_prefix('"').ok_or("label value must be quoted")?;
        let (value, after) = parse_quoted(rest)?;
        labels.push((key.to_string(), value));
        rest = after;
        if !rest.starts_with(',') && !rest.starts_with('}') {
            return Err(format!("expected ',' or '}}' after a label value, got {rest:?}"));
        }
    }
}

/// Parses the body of a quoted label value (opening quote consumed),
/// unescaping `\\`, `\"` and `\n`; returns the value and the remainder
/// after the closing quote.
fn parse_quoted(rest: &str) -> Result<(String, &str), String> {
    let mut value = String::new();
    let mut chars = rest.char_indices();
    while let Some((index, c)) = chars.next() {
        match c {
            '"' => return Ok((value, &rest[index + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => value.push('\\'),
                Some((_, '"')) => value.push('"'),
                Some((_, 'n')) => value.push('\n'),
                other => return Err(format!("bad escape {other:?} in label value")),
            },
            c => value.push(c),
        }
    }
    Err("unterminated label value".to_string())
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn rendered_text_round_trips_through_the_parser() {
        // The golden-render counterpart: every sample the registry renders
        // must be recovered, values bit-exact through the raw token.
        let registry = MetricsRegistry::new();
        registry.counter("a_total", "A.", &[("stream", "s1"), ("op", "feed")]).add(12345);
        registry.gauge("g", "G.", &[("stream", "s\"2\\x\ny")]).set(-7);
        let h = registry.histogram("lat_nanos", "L.", &[]);
        h.record(5);
        h.record(1 << 30);
        let text = registry.render();
        let samples = parse_exposition(&text).expect("rendered text must parse");

        let a = find(&samples, "a_total", &[("stream", "s1")]).expect("a_total");
        assert_eq!(a.value_u64(), Some(12345));
        assert_eq!(a.label("op"), Some("feed"));

        let g = find(&samples, "g", &[]).expect("g");
        assert_eq!(g.label("stream"), Some("s\"2\\x\ny"), "escapes must round-trip");
        assert_eq!(g.raw_value, "-7");

        let count = find(&samples, "lat_nanos_count", &[]).expect("count");
        assert_eq!(count.value_u64(), Some(2));
        let inf = find(&samples, "lat_nanos_bucket", &[("le", "+Inf")]).expect("+Inf bucket");
        assert_eq!(inf.value_u64(), Some(2));
        let sum = find(&samples, "lat_nanos_sum", &[]).expect("sum");
        assert_eq!(sum.value_u64(), Some(5 + (1u64 << 30)));
        // Cumulative buckets are monotone.
        let mut last = 0;
        for sample in samples.iter().filter(|s| s.name == "lat_nanos_bucket") {
            let v = sample.value_u64().expect("bucket counts are integers");
            assert!(v >= last, "bucket counts must be cumulative");
            last = v;
        }
    }

    #[test]
    fn tolerated_extensions_parse() {
        let text = "# arbitrary comment\n\
                    # TYPE s summary\n\
                    x_total 5 1700000000000\n\
                    y{a=\"1\",} +Inf\n";
        let samples = parse_exposition(text).expect("tolerant cases must parse");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].value_u64(), Some(5));
        assert!(samples[1].value.is_infinite());
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for (text, line) in [
            ("ok_total 1\n9bad 2\n", 2),
            ("x_total\n", 1),
            ("x_total nope\n", 1),
            ("x{k=\"v} 1\n", 1),
            ("x{k=v\"} 1\n", 1),
            ("x{k=\"a\\q\"} 1\n", 1),
            ("x_total 1 2 3\n", 1),
            ("# TYPE x wibble\n", 1),
            ("# HELP 9x text\n", 1),
            ("x{k=\"v\"extra} 1\n", 1),
        ] {
            let err = parse_exposition(text).expect_err(text);
            assert_eq!(err.line, line, "wrong line for {text:?}: {err}");
            // Display is exercised for coverage of the error path.
            assert!(err.to_string().contains("exposition line"));
        }
    }
}
