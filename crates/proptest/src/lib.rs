#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate (API-compatible subset).
//!
//! Supports the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test] fn name(x in strategy, …)`,
//!   with an optional leading `#![proptest_config(…)]` item;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * strategies: integer ranges, [`any`], [`collection::vec`], and tuples
//!   of strategies (up to arity 4);
//! * deterministic, seeded case generation (no shrinking — a failing case
//!   reports its case index and the values' `Debug` rendering instead).
//!
//! Case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable; an explicit
//! [`ProptestConfig::with_cases`] wins over both.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies while generating a case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Draws 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Draws uniformly from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        use rand::Rng;
        self.0.gen_range(0..span.max(1))
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map` (upstream `Strategy::prop_map`).
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, map: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map::new(self, map)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `proptest::prelude::any::<T>()` strategy: uniform over all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` values with a
    /// length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Combinator strategies (upstream `proptest::strategy` subset).
pub mod strategy {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy producing a constant value (upstream `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Mapping adapter behind [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F> Map<S, F> {
        pub(crate) fn new(inner: S, map: F) -> Self {
            Self { inner, map }
        }
    }

    impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies — what [`crate::prop_oneof!`]
    /// builds. (Upstream weights branches; this subset chooses uniformly,
    /// which is all the workspace's tests need.)
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union over `options` (at least one).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
            Self { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    /// Boxes a strategy for [`Union`], keeping its value type.
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }
}

/// Chooses uniformly among the given strategies per case (upstream
/// `prop_oneof!`, without branch weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Subset of proptest's run configuration: the per-test case count.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test (overrides both the
    /// default of 64 and the `PROPTEST_CASES` environment variable).
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64),
        }
    }
}

/// Runs the default number of deterministic cases of `body`, panicking on
/// the first failure with the case index and seed. Used by the generated
/// test fns; not part of the public proptest API.
pub fn run_cases<F>(test_name: &str, body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    run_cases_with(ProptestConfig::default(), test_name, body);
}

/// [`run_cases`] with an explicit configuration.
pub fn run_cases_with<F>(config: ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let cases = u64::from(config.cases);
    // Stable per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..cases {
        let mut rng = TestRng(SmallRng::seed_from_u64(seed.wrapping_add(case)));
        if let Err(message) = body(&mut rng) {
            panic!("proptest case {case}/{cases} of `{test_name}` failed (seed {seed}): {message}");
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::Just;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests: `proptest! { #[test] fn name(x in strategy) { … } }`.
///
/// An optional leading `#![proptest_config(expr)]` item applies the given
/// [`ProptestConfig`] to every test in the block. Each parameter is drawn
/// from its strategy per case; the body may use [`prop_assert!`]-family
/// macros, which abort only the current case with a message (reported
/// through a panic, as there is no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($p:pat_param in $s:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases_with($config, stringify!($name), |proptest_case_rng| {
                    $(let $p = $crate::Strategy::generate(&($s), proptest_case_rng);)+
                    #[allow(unused_mut)]
                    let mut proptest_case_body =
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            Ok(())
                        };
                    proptest_case_body()
                });
            }
        )+
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat_param in $s:expr),+ $(,)? ) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |proptest_case_rng| {
                    $(let $p = $crate::Strategy::generate(&($s), proptest_case_rng);)+
                    #[allow(unused_mut)]
                    let mut proptest_case_body =
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            Ok(())
                        };
                    proptest_case_body()
                });
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({} vs {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: `{:?}` == `{:?}` ({} vs {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5, z in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            let _ = z;
        }

        #[test]
        fn vectors_respect_size_and_element_ranges(
            items in vec(1u32..100, 2..40),
            mut tail in vec(0u64..8, 0..3),
        ) {
            prop_assert!((2..40).contains(&items.len()));
            prop_assert!(items.iter().all(|&v| (1..100).contains(&v)));
            tail.push(0);
            prop_assert!(tail.len() <= 3);
        }

        #[test]
        fn tuple_strategies_compose(
            pairs in vec((0u64..10, 1u8..4), 1..20),
            (x, y, z) in (0u32..5, 10i64..20, any::<bool>()),
        ) {
            prop_assert!(pairs.iter().all(|&(a, b)| a < 10 && (1..4).contains(&b)));
            prop_assert!(x < 5 && (10..20).contains(&y));
            let _ = z;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_limits_case_count(x in 0u64..1000) {
            // Runs exactly 3 cases; the assertion itself is trivial.
            prop_assert!(x < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_index() {
        crate::run_cases("always_fails", |_| Err("boom".into()));
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases("det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
