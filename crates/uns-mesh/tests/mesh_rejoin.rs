//! Restart re-join: a killed node that comes back up must **demote**
//! every stream it recovers to a replica hold before serving anything —
//! answering `NotPrimary` on the wire — and then heal back into the
//! replica set through ordinary shipments.
//!
//! This pins the PR 9 finding: durable recovery brings up every stream in
//! the backend as primary, so without the startup demotion a restarted
//! node serves streams it only ever held as a *replica* (and streams
//! whose primaryship was adopted elsewhere while it was down) as a second
//! primary — two nodes accepting writes for one stream.

mod common;

use common::{batch_ids, mesh_client, stream_config, Mesh};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use uns_mesh::{place, FailoverConfig, MeshConfig};
use uns_metrics::TraceKind;
use uns_service::client::ServiceClient;
use uns_service::error::ServiceError;
use uns_service::protocol::EstimatorKind;
use uns_service::resilient::{Delivery, ResilientClient, RetryPolicy};
use uns_service::server::{Server, ServerConfig};
use uns_service::transport::Transport;

const BATCH_LEN: u64 = 64;

fn rejoin_policy() -> RetryPolicy {
    RetryPolicy {
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(100),
        retry_budget: 400,
        op_timeout: Some(Duration::from_millis(750)),
        op_deadline: None,
        jitter_seed: 17,
    }
}

/// Feeds batch `b` and asserts the exactly-once position.
fn feed_one<T, F>(client: &mut ResilientClient<T, F>, stream: &str, b: u64)
where
    T: Transport,
    F: FnMut() -> Result<T, ServiceError>,
{
    let ids = batch_ids(b, BATCH_LEN);
    match client.feed_batch(stream, &ids).expect("feed survives the restart cycle") {
        Delivery::Acked(ack) => {
            assert_eq!(ack.position, (b + 1) * BATCH_LEN, "exactly-once across the hand-offs");
        }
        Delivery::AppliedReplyLost { position } => {
            assert_eq!(position, (b + 1) * BATCH_LEN, "exactly-once across the hand-offs");
        }
    }
}

#[test]
fn restarted_node_rejoins_as_replica_and_heals() {
    // One mesh at a time (see mesh_failover.rs for why).
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let stream = "rejoin";
    let config = MeshConfig {
        failover: FailoverConfig {
            interval: Duration::from_millis(15),
            probe_timeout: Duration::from_millis(100),
            miss_threshold: 3,
            seed: 0xABBA,
        },
        ..MeshConfig::default()
    };
    let mut mesh = Mesh::start(3, &config);
    for node in &mesh.nodes {
        node.start_failover(config.failover);
    }
    let names: Vec<String> = mesh.membership.nodes().iter().map(|n| n.name.clone()).collect();
    let placement = place(stream, &names, 1).expect("three live nodes");
    let primary = mesh.index_of(&placement.primary);
    // A second stream for which the doomed node is only a *replica* — the
    // literal shape of the finding: its durable copy must not come back
    // as a primary either.
    let replica_stream = (0..)
        .map(|i| format!("rejoin-replica-{i}"))
        .find(|name| {
            place(name, &names, 1)
                .is_some_and(|p| p.primary != names[primary] && p.replicas[0] == names[primary])
        })
        .expect("some name places the doomed node as replica");

    let mut client = mesh_client(&mesh, stream, 1, rejoin_policy());
    client.create_stream(stream, &stream_config(EstimatorKind::CountMin)).expect("create");
    let mut side = mesh_client(&mesh, &replica_stream, 1, rejoin_policy());
    side.create_stream(&replica_stream, &stream_config(EstimatorKind::CountMin))
        .expect("create side stream");
    for b in 0..20 {
        feed_one(&mut client, stream, b);
    }
    for b in 0..4 {
        feed_one(&mut side, &replica_stream, b);
    }

    // Kill the primary mid-load; the replica promotes and serves on.
    mesh.nodes[primary].stop();
    for b in 20..40 {
        feed_one(&mut client, stream, b);
    }

    // Restart the killed node on its old address over its old backend.
    // Without the startup demotion it would recover both streams and
    // serve them as primary — a second primary for each.
    let node = mesh.restart(primary, &config);
    node.start_failover(config.failover);

    // Demoted before serving: both streams are replica holds, announced
    // in the trace ring, and the wire answers NotPrimary.
    let held = node.applier().held_streams();
    assert!(held.contains(&stream.to_string()), "ex-primary stream not held: {held:?}");
    assert!(held.contains(&replica_stream), "ex-replica stream not held: {held:?}");
    let events = node.server().metrics().trace().events();
    assert!(
        events.iter().any(|e| e.kind == TraceKind::Demote && &*e.stream == stream),
        "demotion of the ex-primary stream missing from the trace ring"
    );
    let addr = mesh.membership.addr_of(&names[primary]).expect("member");
    let mut direct =
        ServiceClient::new(TcpStream::connect(addr).expect("connect")).expect("client");
    for name in [stream, replica_stream.as_str()] {
        match direct.stats(name) {
            Err(ServiceError::NotPrimary(_)) => {}
            other => panic!("restarted node must answer NotPrimary for {name:?}, got {other:?}"),
        }
    }

    // The mesh keeps serving exactly-once through the promoted node, and
    // shipments heal the re-joined replica: its held WAL generation
    // predates the promotion bump, so the first shipment triggers a full
    // snapshot re-attach, after which its durable position tracks the
    // primary's. Feeding keeps shipping until the peer's detector has
    // revived the restarted node and the catch-up lands.
    let mut fed = 40u64;
    for b in 40..60 {
        feed_one(&mut client, stream, b);
    }
    fed += 20;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let position = node.applier().position(stream);
        if position.is_some_and(|(generation, next)| generation >= 1 && next == fed) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "re-joined replica never caught up; durable position {position:?}, primary at {fed}"
        );
        feed_one(&mut client, stream, fed);
        fed += 1;
        std::thread::sleep(Duration::from_millis(20));
    }

    // Final state bit-equal to an uninterrupted single-node run of the
    // same batches.
    let mesh_snapshot = client.snapshot(stream).expect("snapshot after re-join");
    let reference = Server::start(ServerConfig::default());
    let mut plain = ServiceClient::new(reference.connect_in_process()).expect("client");
    plain.create_stream(stream, &stream_config(EstimatorKind::CountMin)).expect("create");
    for b in 0..fed {
        plain.feed_batch(stream, &batch_ids(b, BATCH_LEN)).expect("feed");
    }
    let reference_snapshot = plain.snapshot(stream).expect("snapshot");
    assert_eq!(
        mesh_snapshot, reference_snapshot,
        "stream state diverged across kill, promotion, and re-join"
    );
    reference.stop();
    mesh.stop_all();
}
