//! Kill-tolerant failover: a 3-node mesh with R=1 loses its primary
//! mid-load; the promoted replica serves the remainder and the final
//! sampler state is **bit-equal** to an uninterrupted single-node run —
//! for every estimator kind.
//!
//! This is the tentpole acceptance test: acked ops apply exactly once
//! across the hand-off (position resync classifies the ambiguous in-flight
//! batch), the promoted replica's recovered log replays to the same bytes,
//! and every per-op output the mesh acked matches the reference run's.

mod common;

use common::{batch_ids, mesh_client, stream_config, Mesh};
use std::time::Duration;
use uns_mesh::{place, FailoverConfig, MeshConfig};
use uns_metrics::TraceKind;
use uns_service::client::ServiceClient;
use uns_service::protocol::EstimatorKind;
use uns_service::resilient::{Delivery, RetryPolicy};
use uns_service::server::{Server, ServerConfig};

const BATCHES: u64 = 40;
const BATCH_LEN: u64 = 64;
const KILL_AFTER: u64 = 20;

fn failover_policy() -> RetryPolicy {
    RetryPolicy {
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(100),
        retry_budget: 400,
        op_timeout: Some(Duration::from_millis(750)),
        op_deadline: None,
        jitter_seed: 7,
    }
}

fn run_kill_primary(kind: EstimatorKind) {
    // One mesh at a time: concurrent meshes on a small machine starve the
    // heartbeat probes into false positives (a poisoned lock just means a
    // prior run's assertion failed — don't mask that panic).
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let stream = format!("mesh-{kind:?}");
    let config = MeshConfig {
        failover: FailoverConfig {
            interval: Duration::from_millis(15),
            probe_timeout: Duration::from_millis(100),
            miss_threshold: 3,
            seed: 0xD0A,
        },
        ..MeshConfig::default()
    };
    let mesh = Mesh::start(3, &config);
    for node in &mesh.nodes {
        node.start_failover(config.failover);
    }
    let names: Vec<String> = mesh.membership.nodes().iter().map(|n| n.name.clone()).collect();
    let placement = place(&stream, &names, 1).expect("three live nodes");
    let primary = mesh.index_of(&placement.primary);
    let replica = mesh.index_of(&placement.replicas[0]);

    let mut client = mesh_client(&mesh, &stream, 1, failover_policy());
    client.create_stream(&stream, &stream_config(kind)).expect("create");
    // delivery per batch: Some(outputs) when acked with outputs, None when
    // the reply (and its outputs) was lost but the batch provably applied.
    let mut acked_outputs: Vec<Option<Vec<u64>>> = Vec::new();
    for b in 0..BATCHES {
        if b == KILL_AFTER {
            // Kill the primary mid-stream: listener closes, heartbeats
            // start missing, the replica promotes, the client fails over.
            mesh.nodes[primary].stop();
        }
        let ids = batch_ids(b, BATCH_LEN);
        match client.feed_batch(&stream, &ids).expect("feed survives failover") {
            Delivery::Acked(ack) => {
                assert_eq!(ack.position, (b + 1) * BATCH_LEN, "exactly-once across hand-off");
                acked_outputs.push(Some(ack.outputs.iter().map(|o| o.as_u64()).collect()));
            }
            Delivery::AppliedReplyLost { position } => {
                assert_eq!(position, (b + 1) * BATCH_LEN, "exactly-once across hand-off");
                acked_outputs.push(None);
            }
        }
    }
    let mesh_snapshot = client.snapshot(&stream).expect("snapshot after failover");
    let stats = client.retry_stats();
    assert!(stats.failovers >= 1, "the client must have rotated endpoints: {stats:?}");
    assert_eq!(stats.budget_exhausted, 0, "retries stayed bounded: {stats:?}");

    // The promoted node announces the promotion (generation bump) in its
    // trace ring and no longer holds the stream as a replica.
    let promoted = &mesh.nodes[replica];
    assert!(
        promoted
            .server()
            .metrics()
            .trace()
            .events()
            .iter()
            .any(|e| e.kind == TraceKind::Promote && &*e.stream == stream.as_str()),
        "promotion event missing on the replica"
    );
    assert!(
        !promoted.applier().held_streams().contains(&stream),
        "promoted stream must leave the replica set"
    );

    // Reference: the same ops on one uninterrupted node.
    let reference = Server::start(ServerConfig::default());
    let mut plain = ServiceClient::new(reference.connect_in_process()).expect("client");
    plain.create_stream(&stream, &stream_config(kind)).expect("create");
    for b in 0..BATCHES {
        let ack = plain.feed_batch(&stream, &batch_ids(b, BATCH_LEN)).expect("feed");
        let outputs: Vec<u64> = ack.outputs.iter().map(|o| o.as_u64()).collect();
        // Every batch the mesh acked with outputs matches the reference
        // per-op output sequence bit-for-bit.
        if let Some(got) = &acked_outputs[usize::try_from(b).unwrap()] {
            assert_eq!(got, &outputs, "{kind:?} batch {b}: outputs diverged");
        }
    }
    let reference_snapshot = plain.snapshot(&stream).expect("snapshot");
    assert_eq!(
        mesh_snapshot, reference_snapshot,
        "{kind:?}: promoted replica diverged from the uninterrupted run"
    );
    reference.stop();
    mesh.stop_all();
}

#[test]
fn killed_primary_fails_over_bit_equal_count_min() {
    run_kill_primary(EstimatorKind::CountMin);
}

#[test]
fn killed_primary_fails_over_bit_equal_count_sketch() {
    run_kill_primary(EstimatorKind::CountSketch);
}

#[test]
fn killed_primary_fails_over_bit_equal_exact() {
    run_kill_primary(EstimatorKind::Exact);
}
