//! Partition fault matrix: seeded sever/heal windows on the replication
//! links of a 3-node mesh. The run must terminate with bounded client
//! retries, lose no acked op at `FsyncPolicy::PerOp`, and re-attach the
//! replica **incrementally** — the durable snapshot ships exactly once
//! per stream, no matter how often the link drops.
//!
//! The fault plan wraps only the connections the replicator originates;
//! the client path stays clean, so every feed should ack while
//! replication degrades and catches back up underneath it.

mod common;

use common::{batch_ids, mesh_client, stream_config, Mesh};
use std::time::Duration;
use uns_mesh::{place, MeshConfig};
use uns_service::fault::{FaultPlan, FaultSpec};
use uns_service::protocol::EstimatorKind;
use uns_service::resilient::{Delivery, RetryPolicy};
use uns_service::wal::parse_wal;

const BATCHES: u64 = 40;
const BATCH_LEN: u64 = 32;
/// Catch-up feeds after the main load; each one gives the primary another
/// chance to re-attach once the 250ms session backoff expires.
const CATCHUP_LIMIT: u64 = 200;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn run_partition_seed(seed: u64) {
    // Rate-zero spec: partitions come only from the explicit `sever_for`
    // schedule below, so the whole run is deterministic per seed.
    let plan = FaultPlan::new(seed, FaultSpec::default());
    let config = MeshConfig { fault_plan: Some(plan.clone()), ..MeshConfig::default() };
    let mesh = Mesh::start(3, &config);
    let stream = format!("part-{seed}");
    let names: Vec<String> = mesh.membership.nodes().iter().map(|n| n.name.clone()).collect();
    let placement = place(&stream, &names, 1).expect("three live nodes");
    let primary = mesh.index_of(&placement.primary);
    let replica = mesh.index_of(&placement.replicas[0]);

    let policy = RetryPolicy {
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(50),
        retry_budget: 64,
        op_timeout: Some(Duration::from_secs(2)),
        op_deadline: None,
        jitter_seed: seed,
    };
    let mut client = mesh_client(&mesh, &stream, 1, policy);
    client.create_stream(&stream, &stream_config(EstimatorKind::CountMin)).expect("create");

    // Main load with a seeded sever schedule. Batches 0..3 stay clean so
    // the single initial full attach is never interrupted; batch 3 always
    // severs (every seed exercises at least one mid-stream re-attach) and
    // later batches sever from the seeded draw.
    let mut acked = 0u64;
    for b in 0..BATCHES {
        if b == 3 {
            plan.sever_for(2);
        } else if b > 3 {
            let draw = splitmix64(seed ^ (b << 8));
            if draw.is_multiple_of(5) {
                plan.sever_for(1 + ((draw >> 8) % 6));
            }
        }
        match client.feed_batch(&stream, &batch_ids(b, BATCH_LEN)).expect("feed under partition") {
            Delivery::Acked(ack) => assert_eq!(ack.position, (b + 1) * BATCH_LEN),
            Delivery::AppliedReplyLost { position } => assert_eq!(position, (b + 1) * BATCH_LEN),
        }
        acked += 1;
    }

    // Catch-up: keep feeding until the replica's durable position reaches
    // every acked record. Each feed is one WAL record, and the loop must
    // outlast the replicator's 250ms re-attach backoff.
    let applier = mesh.nodes[replica].applier();
    let mut extra = 0u64;
    while applier.position(&stream).map(|(_, next)| next) != Some(acked) {
        assert!(
            extra < CATCHUP_LIMIT,
            "seed {seed}: replica never caught up (acked {acked}, replica at {:?})",
            applier.position(&stream)
        );
        match client
            .feed_batch(&stream, &batch_ids(BATCHES + extra, BATCH_LEN))
            .expect("catch-up feed")
        {
            Delivery::Acked(_) | Delivery::AppliedReplyLost { .. } => acked += 1,
        }
        extra += 1;
        std::thread::sleep(Duration::from_millis(50));
    }

    // Bounded retries: the client never ran out of budget or deadline.
    let stats = client.retry_stats();
    assert_eq!(stats.budget_exhausted, 0, "seed {seed}: unbounded retries: {stats:?}");
    assert_eq!(stats.deadlines_exceeded, 0, "seed {seed}: deadline blown: {stats:?}");

    // The snapshot shipped exactly once; every later re-attach resumed
    // from the replica's own durable position.
    let attach = mesh.nodes[primary].replicator().attach_stats();
    assert_eq!(attach.full, 1, "seed {seed}: snapshot re-shipped: {attach:?}");
    assert!(attach.incremental >= 1, "seed {seed}: no incremental re-attach ran: {attach:?}");

    // No acked-op loss, bit-for-bit: the replica's durable log is the
    // primary's, and their (generation, next_seq) positions agree.
    let mut primary_wal = Vec::new();
    mesh.backends[primary].with_wal_bytes(&stream, |b| primary_wal = b.clone());
    let mut replica_wal = Vec::new();
    mesh.backends[replica].with_wal_bytes(&stream, |b| replica_wal = b.clone());
    assert!(!primary_wal.is_empty(), "seed {seed}: primary WAL missing");
    assert_eq!(primary_wal, replica_wal, "seed {seed}: replica log diverged from the primary");
    let parsed = parse_wal(&primary_wal);
    let header = parsed.header.expect("primary WAL header");
    assert_eq!(parsed.records.len() as u64, acked, "seed {seed}: primary log short of the acks");
    assert_eq!(
        applier.position(&stream),
        Some((header.generation, header.base_seq + acked)),
        "seed {seed}: durable positions diverged"
    );
    mesh.stop_all();
}

#[test]
fn partition_matrix_terminates_without_acked_loss() {
    for seed in 1..=6 {
        run_partition_seed(seed);
    }
}
