//! Shared harness of the mesh integration tests: bring up an N-node TCP
//! mesh over in-memory backends and build resilient clients over the
//! placement-ordered endpoint list.

// Each integration-test binary compiles this module and uses a subset.
#![allow(dead_code)]

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use uns_core::NodeId;
use uns_mesh::{client_endpoints, Membership, MeshConfig, MeshNode, NodeInfo};
use uns_service::error::ServiceError;
use uns_service::protocol::{EstimatorKind, HashFamilyKind, StreamConfig};
use uns_service::resilient::{ResilientClient, RetryPolicy};
use uns_service::storage::MemBackend;

/// A running mesh: a client-side membership view (never marked dead), the
/// nodes, and each node's backend (kept concrete so tests can inspect raw
/// WAL bytes). Every node owns its *own* liveness view, as separate
/// processes would — a shared view would let one node's detector consume
/// another node's exactly-once promotion callback.
pub struct Mesh {
    pub membership: Arc<Membership>,
    pub nodes: Vec<Arc<MeshNode>>,
    pub backends: Vec<Arc<MemBackend>>,
}

impl Mesh {
    /// Starts `n` nodes named `n0..` on ephemeral localhost ports.
    pub fn start(n: usize, config: &MeshConfig) -> Mesh {
        let listeners: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
        let infos: Vec<NodeInfo> = listeners
            .iter()
            .enumerate()
            .map(|(i, l)| NodeInfo {
                name: format!("n{i}"),
                addr: l.local_addr().expect("local addr"),
            })
            .collect();
        let membership = Arc::new(Membership::new(infos.clone()));
        let backends: Vec<Arc<MemBackend>> = (0..n).map(|_| Arc::new(MemBackend::new())).collect();
        let nodes = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                MeshNode::start(
                    &format!("n{i}"),
                    listener,
                    backends[i].clone(),
                    Arc::new(Membership::new(infos.clone())),
                    config,
                )
                .expect("mesh node start")
            })
            .collect();
        Mesh { membership, nodes, backends }
    }

    /// Index of the node named `name`.
    pub fn index_of(&self, name: &str) -> usize {
        self.membership
            .nodes()
            .iter()
            .position(|n| n.name == name)
            .expect("placement names a mesh member")
    }

    /// Restarts node `index` on its original address over its original
    /// backend — what a process restart is — replacing it in `nodes`.
    /// The caller killed it earlier with `stop()`; the failure detector
    /// is not started (call `start_failover` when the test wants one).
    pub fn restart(&mut self, index: usize, config: &MeshConfig) -> Arc<MeshNode> {
        let infos: Vec<NodeInfo> = self.membership.nodes().to_vec();
        let listener = TcpListener::bind(infos[index].addr).expect("rebind the node's address");
        let node = MeshNode::start(
            &infos[index].name,
            listener,
            self.backends[index].clone(),
            Arc::new(Membership::new(infos.clone())),
            config,
        )
        .expect("mesh node restart");
        self.nodes[index] = Arc::clone(&node);
        node
    }

    /// Stops every node still running (stop is idempotent).
    pub fn stop_all(&self) {
        for node in &self.nodes {
            node.stop();
        }
    }
}

/// A resilient client failing over across `stream`'s placement-ordered
/// endpoints (primary first, then the replicas).
pub fn mesh_client(
    mesh: &Mesh,
    stream: &str,
    replication: usize,
    policy: RetryPolicy,
) -> ResilientClient<TcpStream, impl FnMut() -> Result<TcpStream, ServiceError>> {
    let endpoints: Vec<SocketAddr> = client_endpoints(&mesh.membership, stream, replication);
    assert!(!endpoints.is_empty());
    let connects = endpoints
        .into_iter()
        .map(|addr| {
            move || {
                let tcp = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
                tcp.set_nodelay(true).ok();
                Ok(tcp)
            }
        })
        .collect();
    ResilientClient::with_endpoints(policy, connects)
}

/// A small deterministic stream config for `kind`.
pub fn stream_config(kind: EstimatorKind) -> StreamConfig {
    StreamConfig {
        kind,
        capacity: 16,
        width: 128,
        depth: 4,
        seed: 11,
        family: HashFamilyKind::Mersenne,
    }
}

/// Deterministic per-batch identifiers: batch `b` covers a disjoint,
/// well-spread id range.
pub fn batch_ids(batch: u64, len: u64) -> Vec<NodeId> {
    (0..len)
        .map(|i| {
            let mut x = (batch * len + i).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED;
            x ^= x >> 29;
            NodeId::new(x)
        })
        .collect()
}
