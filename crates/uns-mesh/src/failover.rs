//! Seeded-heartbeat failure detection.
//!
//! Each node probes every peer it still believes live by opening (and
//! immediately closing) a TCP connection to the peer's wire listener — a
//! dead process refuses instantly, a live one accepts. After
//! [`FailoverConfig::miss_threshold`] consecutive misses the peer is
//! marked dead in the shared [`Membership`] view and the `on_dead`
//! callback fires **exactly once** per death (the mark is
//! compare-and-set), which is where promotion hangs. Dead peers keep
//! being probed: a successful probe marks the peer live again, so a
//! restarted node re-enters placement and starts receiving shipments —
//! the other half of the restart re-join path (the restarted node itself
//! demotes its recovered streams to replica holds on startup).
//!
//! The probe cadence is jittered from a seed so a whole mesh restarted
//! together does not probe in lockstep — and so a test re-run sees the
//! same schedule.

use crate::membership::Membership;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Heartbeat knobs of a [`FailureDetector`].
#[derive(Clone, Copy, Debug)]
pub struct FailoverConfig {
    /// Base pause between probe rounds (jittered ±25%).
    pub interval: Duration,
    /// Connect timeout of one probe.
    pub probe_timeout: Duration,
    /// Consecutive missed probes before a peer is declared dead.
    pub miss_threshold: u32,
    /// Seed of the jitter stream: same seed, same probe schedule.
    pub seed: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(25),
            probe_timeout: Duration::from_millis(250),
            miss_threshold: 3,
            seed: 0xBEA7,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A background heartbeat prober; stop it with
/// [`FailureDetector::stop`] (dropping without stopping leaks the
/// thread until process exit).
pub struct FailureDetector {
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl FailureDetector {
    /// Starts probing every peer of `node` in `membership`. `on_dead`
    /// fires once per newly-dead peer, on the detector thread.
    pub fn start(
        node: String,
        membership: Arc<Membership>,
        config: FailoverConfig,
        on_dead: impl Fn(&str) + Send + 'static,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name(format!("uns-heartbeat-{node}"))
            .spawn(move || {
                let mut misses: HashMap<String, u32> = HashMap::new();
                let mut rng = config.seed;
                while !stop.load(Ordering::Relaxed) {
                    for peer in membership.nodes() {
                        if peer.name == node {
                            continue;
                        }
                        match TcpStream::connect_timeout(&peer.addr, config.probe_timeout) {
                            Ok(_) => {
                                misses.insert(peer.name.clone(), 0);
                                // A dead peer answering again has
                                // restarted: back into placement it goes.
                                membership.mark_live(&peer.name);
                            }
                            Err(_) => {
                                let count = misses.entry(peer.name.clone()).or_insert(0);
                                *count += 1;
                                if *count >= config.miss_threshold.max(1)
                                    && membership.mark_dead(&peer.name)
                                {
                                    on_dead(&peer.name);
                                }
                            }
                        }
                    }
                    // Jitter in [0.75, 1.25)·interval, seeded.
                    rng = splitmix64(rng);
                    let unit = (rng >> 11) as f64 / (1u64 << 53) as f64;
                    std::thread::sleep(config.interval.mul_f64(0.75 + 0.5 * unit));
                }
            })
            .expect("spawning the heartbeat thread");
        Self { shutdown, thread: Some(thread) }
    }

    /// Stops the prober and joins its thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
