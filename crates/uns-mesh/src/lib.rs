#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The replicated sampling mesh: N [`uns_service`] nodes, each stream
//! placed on a primary plus `R` replicas by rendezvous hashing, kept in
//! sync by shipping the primary's write-ahead log over the wire.
//!
//! The paper's sampler is a deterministic function of its inputs, which
//! makes replication unusually honest here: the WAL *is* the state. A
//! replica that holds the same durable snapshot and the same log bytes
//! recovers a **bit-identical** sampler — promotion after a primary death
//! is the ordinary crash-recovery path ([`Server::adopt_stream`]) with the
//! incarnation generation bumped so a stale primary's log can never
//! replay onto the promoted stream.
//!
//! # Pieces
//!
//! * [`membership`] — the fixed node set plus the dynamic liveness view;
//! * [`placement`] — rendezvous (highest-random-weight) placement: every
//!   node computes the same primary/replica ranking with no coordinator;
//! * [`replicator`] — the primary-side [`ReplicationSink`] (ships each
//!   WAL record before the local append, attaches/catches-up replicas
//!   synchronously on the frozen stream) and the replica-side
//!   [`ReplicaHandler`] (durably logs shipments before acking);
//! * [`failover`] — seeded-heartbeat failure detection driving promotion.
//!
//! A [`MeshNode`] wires all four onto one [`Server`]. Clients are plain
//! [`uns_service::resilient::ResilientClient`]s over the placement-ordered
//! endpoint list ([`client_endpoints`]): a dead primary surfaces as a
//! connect error, a not-yet-promoted replica as `NotPrimary`, and the
//! client rotates until the promoted node answers — with position resync
//! keeping mutating ops exactly-once across the hand-off.

pub mod failover;
pub mod membership;
pub mod placement;
pub mod replicator;

pub use failover::{FailoverConfig, FailureDetector};
pub use membership::{Membership, NodeInfo};
pub use placement::{place, rank, Placement};
pub use replicator::{AttachStats, ReplicaApplier, Replicator};

use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use uns_service::error::ServiceError;
use uns_service::fault::FaultPlan;
use uns_service::server::{
    DurabilityConfig, ReplicaHandler, ReplicationSink, Server, ServerConfig,
};
use uns_service::storage::StorageBackend;
use uns_service::wal::FsyncPolicy;

/// Everything one mesh node needs beyond its name, listener, and backend.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Replicas per stream (`R`); the live set clamps it.
    pub replication: usize,
    /// Fsync policy of both the primary WAL and the replica-side log.
    pub fsync: FsyncPolicy,
    /// The wrapped server's tuning knobs.
    pub server: ServerConfig,
    /// Heartbeat knobs of the failure detector.
    pub failover: FailoverConfig,
    /// Connect timeout of replication sessions.
    pub connect_timeout: Duration,
    /// Per-shipment reply timeout of replication sessions.
    pub op_timeout: Option<Duration>,
    /// Optional seeded fault schedule wrapping every replication
    /// connection this node *originates* (the partition tests sever it).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self {
            replication: 1,
            fsync: FsyncPolicy::PerOp,
            server: ServerConfig::default(),
            failover: FailoverConfig::default(),
            connect_timeout: Duration::from_millis(500),
            op_timeout: Some(Duration::from_secs(2)),
            fault_plan: None,
        }
    }
}

/// The placement-ordered endpoint list a client of `stream` should fail
/// over across: primary first, then the replicas in promotion order.
/// Computed over the full node set — clients do not track liveness; a
/// dead node surfaces as a connect error and the resilient client
/// rotates past it.
pub fn client_endpoints(
    membership: &Membership,
    stream: &str,
    replication: usize,
) -> Vec<SocketAddr> {
    let names: Vec<String> = membership.nodes().iter().map(|n| n.name.clone()).collect();
    rank(stream, &names)
        .into_iter()
        .take(replication + 1)
        .filter_map(|name| membership.addr_of(&name))
        .collect()
}

/// Whether `peer` currently serves `stream` as primary: a `Stats` probe
/// answered `Ok`. A dead peer (connect error), a replica (`NotPrimary`),
/// and a peer without the stream (`UnknownStream`) all answer no.
fn peer_serves(membership: &Membership, config: &MeshConfig, peer: &str, stream: &str) -> bool {
    let Some(addr) = membership.addr_of(peer) else { return false };
    let Ok(tcp) = std::net::TcpStream::connect_timeout(&addr, config.connect_timeout) else {
        return false;
    };
    tcp.set_nodelay(true).ok();
    let Ok(mut client) = uns_service::client::ServiceClient::new(tcp) else { return false };
    if client.set_op_timeout(config.op_timeout).is_err() {
        return false;
    }
    client.stats(stream).is_ok()
}

/// One node of the mesh: a durable [`Server`] with the replica applier
/// and replication sink installed, serving the wire protocol on a TCP
/// listener, plus (once [`MeshNode::start_failover`] is called) a
/// heartbeat detector that promotes this node's replica streams when
/// their primary dies.
pub struct MeshNode {
    name: String,
    replication: usize,
    server: Arc<Server>,
    membership: Arc<Membership>,
    applier: Arc<ReplicaApplier>,
    replicator: Arc<Replicator>,
    serve_thread: Mutex<Option<JoinHandle<std::io::Result<()>>>>,
    detector: Mutex<Option<FailureDetector>>,
}

impl MeshNode {
    /// Starts the node: recovers durable streams from `backend`, installs
    /// the replication hooks, and begins serving `listener`. The failure
    /// detector is **not** started here — call
    /// [`MeshNode::start_failover`] once every node of the mesh is up, so
    /// a slow-starting peer is not declared dead on sight.
    ///
    /// # Errors
    ///
    /// Durable recovery failures from [`Server::start_durable`].
    pub fn start(
        name: &str,
        listener: TcpListener,
        backend: Arc<dyn StorageBackend>,
        membership: Arc<Membership>,
        config: &MeshConfig,
    ) -> Result<Arc<Self>, ServiceError> {
        let mut durability = DurabilityConfig::new(Arc::clone(&backend));
        durability.fsync = config.fsync;
        let server = Arc::new(Server::start_durable(config.server, durability)?);
        let applier = Arc::new(ReplicaApplier::new(Arc::clone(&backend), config.fsync));
        server.set_replica_handler(Some(Arc::clone(&applier) as Arc<dyn ReplicaHandler>));
        let replicator = Arc::new(Replicator::new(
            name,
            Arc::clone(&membership),
            config.replication,
            backend,
            Arc::clone(server.metrics()),
            config.connect_timeout,
            config.op_timeout,
            config.fault_plan.clone(),
        ));
        server.set_replication_sink(Some(Arc::clone(&replicator) as Arc<dyn ReplicationSink>));
        // Re-join demotion (the restart bugfix): durable recovery just
        // brought up *every* stream in this node's backend as primary —
        // including streams this node only ever held as a replica, and
        // streams whose primaryship was adopted elsewhere while it was
        // down. Serving those would put two primaries on the wire. Before
        // the listener opens, each recovered stream is demoted to a
        // replica hold unless this node is the placement primary over the
        // full membership *and* no peer is currently serving it; clients
        // get `NotPrimary` here and find the real primary by rotation,
        // and the next shipment heals this copy (generation mismatch ⇒
        // snapshot re-attach).
        let everyone: Vec<String> = membership.nodes().iter().map(|n| n.name.clone()).collect();
        for stream in server.stream_names() {
            let ranking = rank(&stream, &everyone);
            let placed_here = ranking.first().is_some_and(|primary| primary == name);
            let served_elsewhere = ranking
                .iter()
                .filter(|peer| peer.as_str() != name)
                .any(|peer| peer_serves(&membership, config, peer, &stream));
            if placed_here && !served_elsewhere {
                continue;
            }
            if server.demote_stream(&stream).is_ok() {
                let _ = applier.hold(&stream);
            }
        }
        let serve_server = Arc::clone(&server);
        let serve_thread = std::thread::Builder::new()
            .name(format!("uns-mesh-{name}"))
            .spawn(move || serve_server.serve(listener))
            .expect("spawning the mesh serve thread");
        Ok(Arc::new(Self {
            name: name.to_string(),
            replication: config.replication,
            server,
            membership,
            applier,
            replicator,
            serve_thread: Mutex::new(Some(serve_thread)),
            detector: Mutex::new(None),
        }))
    }

    /// Starts the heartbeat detector. On a peer's death, every stream this
    /// node holds as a replica is promoted **iff** placement over the
    /// surviving live set now makes this node the primary — so exactly one
    /// survivor adopts each orphaned stream.
    pub fn start_failover(self: &Arc<Self>, config: FailoverConfig) {
        let node = Arc::clone(self);
        let detector = FailureDetector::start(
            self.name.clone(),
            Arc::clone(&self.membership),
            config,
            move |_dead| node.promote_orphans(),
        );
        *self.detector.lock().expect("detector lock poisoned") = Some(detector);
    }

    /// Promotes every replica-held stream whose placement over the current
    /// live view names this node primary. Public so tests (and operators)
    /// can drive promotion without the heartbeat thread.
    pub fn promote_orphans(&self) {
        for stream in self.applier.held_streams() {
            let live = self.membership.live_names();
            let Some(placement) = place(&stream, &live, self.replication) else { continue };
            if placement.primary != self.name {
                continue;
            }
            // Release-before-adopt: the applier stops claiming the stream
            // before the registry serves it, so the NotPrimary routing
            // check never bounces ops on a promoted stream.
            if self.applier.release(&stream) {
                let _ = self.server.adopt_stream(&stream);
            }
        }
    }

    /// This node's placement name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped server (metrics, in-process connections, stats).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The replica-side applier (held streams, durable positions).
    pub fn applier(&self) -> &ReplicaApplier {
        &self.applier
    }

    /// The primary-side replication sink (attach counters).
    pub fn replicator(&self) -> &Replicator {
        &self.replicator
    }

    /// Stops the detector, the server, and the serve loop, joining both
    /// threads. Also what "killing" a node means in the failover tests:
    /// the listener closes, so peers' probes start refusing.
    pub fn stop(&self) {
        if let Some(detector) = self.detector.lock().expect("detector lock poisoned").take() {
            detector.stop();
        }
        self.server.stop();
        if let Some(thread) = self.serve_thread.lock().expect("serve lock poisoned").take() {
            let _ = thread.join();
        }
    }
}
