//! Rendezvous (highest-random-weight) placement of streams onto nodes.
//!
//! Every node computes the same ranking from the same inputs — no
//! coordinator, no placement table to replicate. For a stream `s` and node
//! `n` the score is `splitmix64(h(n) ^ h(s))`; the live node with the
//! highest score is the primary, the next `R` are the replicas. When a
//! node dies, only the streams it carried move (the defining rendezvous
//! property), and the stream's first replica — which already holds the
//! WAL — is exactly the node promotion picks.

/// splitmix64's finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the bytes, then splitmix to spread the low entropy of
/// short ASCII names across all 64 bits.
fn hash_str(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// The rendezvous score of `node` for `stream` — identical on every node
/// computing it, no shared state needed.
pub fn score(stream: &str, node: &str) -> u64 {
    splitmix64(hash_str(node) ^ hash_str(stream))
}

/// Ranks `nodes` for `stream` by descending score (name as a total-order
/// tiebreak, so equal scores cannot make two nodes disagree).
pub fn rank(stream: &str, nodes: &[String]) -> Vec<String> {
    let mut ranked: Vec<&String> = nodes.iter().collect();
    ranked.sort_by(|a, b| {
        score(stream, b).cmp(&score(stream, a)).then_with(|| a.as_str().cmp(b.as_str()))
    });
    ranked.into_iter().cloned().collect()
}

/// Where a stream lives: one primary plus up to `R` replicas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The node serving reads and writes.
    pub primary: String,
    /// Replica nodes in promotion order (best score first).
    pub replicas: Vec<String>,
}

/// Places `stream` on the `live` node set with `replication` replicas
/// (fewer when the live set is too small). `None` when no node is live.
pub fn place(stream: &str, live: &[String], replication: usize) -> Option<Placement> {
    let mut ranked = rank(stream, live);
    if ranked.is_empty() {
        return None;
    }
    let primary = ranked.remove(0);
    ranked.truncate(replication);
    Some(Placement { primary, replicas: ranked })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ranking_is_deterministic_and_total() {
        let nodes = names(&["n0", "n1", "n2", "n3"]);
        let a = rank("stream-a", &nodes);
        assert_eq!(a, rank("stream-a", &nodes), "same inputs, same ranking");
        let mut sorted = a.clone();
        sorted.sort();
        let mut expect = nodes.clone();
        expect.sort();
        assert_eq!(sorted, expect, "ranking is a permutation of the node set");
        // Different streams land on different orders somewhere within a
        // small set of streams — the scores are not degenerate.
        assert!(
            (0..32).any(|i| rank(&format!("s{i}"), &nodes) != a),
            "placement must depend on the stream name"
        );
    }

    #[test]
    fn node_death_moves_only_its_streams() {
        let nodes = names(&["n0", "n1", "n2", "n3"]);
        let survivors = names(&["n0", "n1", "n3"]);
        for i in 0..64 {
            let stream = format!("s{i}");
            let before = place(&stream, &nodes, 1).unwrap();
            let after = place(&stream, &survivors, 1).unwrap();
            if before.primary != "n2" {
                assert_eq!(before.primary, after.primary, "{stream}: unaffected primary moved");
            } else {
                // The promoted node is the dead primary's first replica —
                // the node already holding the stream's WAL.
                assert_eq!(after.primary, before.replicas[0], "{stream}");
            }
        }
    }

    #[test]
    fn replica_counts_clamp_to_the_live_set() {
        let nodes = names(&["a", "b"]);
        let p = place("s", &nodes, 3).unwrap();
        assert_eq!(p.replicas.len(), 1);
        assert!(place("s", &[], 1).is_none());
        let solo = place("s", &names(&["only"]), 2).unwrap();
        assert_eq!(solo.primary, "only");
        assert!(solo.replicas.is_empty());
    }
}
