//! Static membership with a dynamic liveness overlay.
//!
//! The mesh's node set is fixed at start (the build containers have no
//! discovery service to talk to); what changes at runtime is *liveness*:
//! the failure detector marks nodes dead, promotions consult the live
//! view. **Each node owns its own [`Membership`] view** — even when the
//! nodes share a process — and converges through its own detector:
//! [`Membership::mark_dead`]'s changed-the-view return is what makes each
//! node's promotion callback fire exactly once, so a view shared between
//! nodes would let one node's detector consume another node's promotion.
//! Views only need to agree eventually, because a stale view yields
//! `NotPrimary` bounces, not wrong data.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::Mutex;

/// One mesh node: a stable name (the placement identity) and the address
/// its wire-protocol listener is bound to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// Stable node name — hashing identity for placement; never reused.
    pub name: String,
    /// Wire-protocol listener address.
    pub addr: SocketAddr,
}

/// The fixed node set plus the set currently believed dead.
#[derive(Debug)]
pub struct Membership {
    nodes: Vec<NodeInfo>,
    dead: Mutex<BTreeSet<String>>,
}

impl Membership {
    /// A membership over `nodes`, all initially live.
    pub fn new(nodes: Vec<NodeInfo>) -> Self {
        Self { nodes, dead: Mutex::new(BTreeSet::new()) }
    }

    /// Every configured node, live or not, in declaration order.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// The listener address of `name`, if it is a configured node.
    pub fn addr_of(&self, name: &str) -> Option<SocketAddr> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.addr)
    }

    /// Marks `name` dead; returns `true` when this call changed the view
    /// (so exactly one detector observation drives the promotion logic).
    pub fn mark_dead(&self, name: &str) -> bool {
        self.dead.lock().expect("membership lock poisoned").insert(name.to_string())
    }

    /// Marks `name` live again (a healed node re-joins placement).
    pub fn mark_live(&self, name: &str) {
        self.dead.lock().expect("membership lock poisoned").remove(name);
    }

    /// Whether `name` is currently believed dead.
    pub fn is_dead(&self, name: &str) -> bool {
        self.dead.lock().expect("membership lock poisoned").contains(name)
    }

    /// Names of the nodes currently believed live, in declaration order.
    pub fn live_names(&self) -> Vec<String> {
        let dead = self.dead.lock().expect("membership lock poisoned");
        self.nodes.iter().filter(|n| !dead.contains(&n.name)).map(|n| n.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(name: &str, port: u16) -> NodeInfo {
        NodeInfo { name: name.into(), addr: format!("127.0.0.1:{port}").parse().unwrap() }
    }

    #[test]
    fn liveness_overlay_tracks_marks() {
        let m = Membership::new(vec![info("a", 1), info("b", 2), info("c", 3)]);
        assert_eq!(m.live_names(), ["a", "b", "c"]);
        assert!(m.mark_dead("b"), "first observation changes the view");
        assert!(!m.mark_dead("b"), "repeat observation does not");
        assert!(m.is_dead("b"));
        assert_eq!(m.live_names(), ["a", "c"]);
        m.mark_live("b");
        assert_eq!(m.live_names(), ["a", "b", "c"]);
        assert_eq!(m.addr_of("c"), Some("127.0.0.1:3".parse().unwrap()));
        assert_eq!(m.addr_of("zz"), None);
    }
}
