//! WAL-shipping replication: the primary-side sink and the replica-side
//! applier, both speaking the service's `Replicate` opcode.
//!
//! The WAL **is** the replication log. [`Replicator`] implements the
//! server's [`ReplicationSink`]: the stream's owning worker hands it every
//! record *before* appending locally, and the sink pushes the exact
//! CRC-framed bytes to each replica and waits for the durable ack
//! (log-before-ack on the replica). Because `encode_record` is
//! deterministic and replicas apply through the same recovery machinery,
//! a replica's durable state is byte-identical to the primary's by
//! construction — promotion replays a log that is literally the same
//! bytes.
//!
//! Ship-before-local-append bounds the crash window: a primary dying
//! between ship and append leaves the replica at most one record *ahead*
//! — an unacknowledged op the client's position resync classifies as
//! applied — never behind on an acknowledged one.
//!
//! Attach and catch-up run **synchronously inside `ship`**, on the worker
//! thread that owns the stream: the primary's WAL is frozen for the whole
//! exchange, so the catch-up slice plus the shipped record is gap-free by
//! construction, with no lock juggling. A replica whose generation matches
//! resumes from its own durable position (an incremental slice of the
//! primary's log); anything else gets the durable snapshot and the full
//! log tail.

use crate::membership::Membership;
use crate::placement::place;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use uns_metrics::TraceKind;
use uns_service::client::ServiceClient;
use uns_service::error::ServiceError;
use uns_service::fault::{FaultPlan, FaultTransport};
use uns_service::metrics::{stream_replication_handles, ServiceMetrics};
use uns_service::protocol::{ErrorCode, Response};
use uns_service::server::{ReplicaHandler, ReplicationSink};
use uns_service::storage::StorageBackend;
use uns_service::transport::Transport;
use uns_service::wal::{
    decode_record, parse_wal, DurableSnapshot, FsyncPolicy, WalOp, WalOpRef, WalWriter,
    WAL_HEADER_LEN,
};

/// Soft cap on the record bytes of one catch-up shipment. Frames also
/// carry the snapshot on the first call, so this stays far under the wire
/// limit while keeping round-trips rare.
const CATCHUP_CHUNK_BYTES: u64 = 1 << 20;

/// How long a failed peer is skipped before the next attach attempt, so a
/// dead replica costs the op path one connect timeout per backoff window,
/// not one per record.
const ATTACH_BACKOFF: Duration = Duration::from_millis(250);

fn op_ref(op: &WalOp) -> WalOpRef<'_> {
    match op {
        WalOp::Ingest(ids) => WalOpRef::Ingest(ids),
        WalOp::Feed(ids) => WalOpRef::Feed(ids),
        WalOp::Sample => WalOpRef::Sample,
    }
}

fn error(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error { code, message: message.into() }
}

// ---------------------------------------------------------------------------
// Replica side
// ---------------------------------------------------------------------------

struct ReplicaStream {
    writer: WalWriter,
}

#[derive(Default)]
struct ApplierState {
    streams: HashMap<String, ReplicaStream>,
    /// Streams promoted away on this node: a stale primary re-appearing
    /// after a partition must not be allowed to clobber the promoted
    /// incarnation with an old-generation snapshot.
    released: Vec<String>,
}

/// Replica-side shipment applier: durably logs every shipped record into
/// this node's own backend (log-before-ack) so a later promotion recovers
/// the stream through the ordinary snapshot-plus-replay path.
pub struct ReplicaApplier {
    backend: Arc<dyn StorageBackend>,
    fsync: FsyncPolicy,
    state: Mutex<ApplierState>,
}

impl ReplicaApplier {
    /// An applier persisting into `backend` under `fsync` — the same
    /// policy the node's server uses, so a replica ack promises exactly
    /// the durability a primary ack does.
    pub fn new(backend: Arc<dyn StorageBackend>, fsync: FsyncPolicy) -> Self {
        Self { backend, fsync, state: Mutex::new(ApplierState::default()) }
    }

    /// Reopens a stream's durable state left by an earlier attach (the
    /// re-attach path after a partition): decodes the snapshot for the
    /// generation baseline and resumes the WAL's valid prefix.
    fn open_existing(&self, stream: &str) -> Result<Option<ReplicaStream>, ServiceError> {
        let Some(snap_bytes) = self.backend.read_snapshot(stream)? else {
            return Ok(None);
        };
        let snap = DurableSnapshot::decode(&snap_bytes)?;
        let mut store = self.backend.open_wal(stream)?;
        let parsed = parse_wal(&store.read_all()?);
        let usable = parsed
            .header
            .is_some_and(|h| h.generation == snap.generation && h.base_seq <= snap.seq);
        let writer = if usable {
            let header = parsed.header.expect("usable implies a header");
            let next = header.base_seq + parsed.records.len() as u64;
            WalWriter::resume(store, snap.generation, parsed.valid_len, next, self.fsync)?
        } else {
            WalWriter::create(store, snap.generation, snap.seq, self.fsync)?
        };
        Ok(Some(ReplicaStream { writer }))
    }

    /// Stops holding `stream` (promotion hand-off): the WAL handle is
    /// dropped so [`uns_service::server::Server::adopt_stream`] can reopen
    /// the durable state, and the stream is barred from future shipments.
    /// Returns whether the stream was held.
    pub fn release(&self, stream: &str) -> bool {
        let mut state = self.state.lock().expect("applier lock poisoned");
        let held = state.streams.remove(stream).is_some();
        if !state.released.iter().any(|s| s == stream) {
            state.released.push(stream.to_string());
        }
        held
    }

    /// Holds `stream` as a replica from its durable state on this node's
    /// backend (the restart re-join path): the server-side `NotPrimary`
    /// routing check starts bouncing client ops immediately, and future
    /// shipments are accepted again. A previous [`ReplicaApplier::release`]
    /// of the stream is undone. Returns whether durable state existed to
    /// hold; a stream this node never stored cannot be held.
    ///
    /// # Errors
    ///
    /// Durable-state decode/open failures from the backend.
    pub fn hold(&self, stream: &str) -> Result<bool, ServiceError> {
        let mut state = self.state.lock().expect("applier lock poisoned");
        state.released.retain(|s| s != stream);
        if state.streams.contains_key(stream) {
            return Ok(true);
        }
        match self.open_existing(stream)? {
            Some(entry) => {
                state.streams.insert(stream.to_string(), entry);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Names of the streams currently held as replicas.
    pub fn held_streams(&self) -> Vec<String> {
        let state = self.state.lock().expect("applier lock poisoned");
        let mut names: Vec<String> = state.streams.keys().cloned().collect();
        names.sort();
        names
    }

    /// The held stream's `(generation, next_seq)` durable position.
    pub fn position(&self, stream: &str) -> Option<(u64, u64)> {
        let state = self.state.lock().expect("applier lock poisoned");
        state.streams.get(stream).map(|s| (s.writer.generation(), s.writer.next_seq()))
    }
}

impl ReplicaHandler for ReplicaApplier {
    fn apply(
        &self,
        stream: &str,
        generation: u64,
        first_seq: u64,
        snapshot: Option<&[u8]>,
        records: &[u8],
    ) -> Response {
        let mut state = self.state.lock().expect("applier lock poisoned");
        if state.released.iter().any(|s| s == stream) {
            return error(
                ErrorCode::NotPrimary,
                format!("stream {stream:?} was promoted on this node; stale shipment refused"),
            );
        }
        if !state.streams.contains_key(stream) {
            match self.open_existing(stream) {
                Ok(Some(entry)) => {
                    state.streams.insert(stream.to_string(), entry);
                }
                Ok(None) => {}
                Err(err) => {
                    return error(
                        ErrorCode::Durability,
                        format!("replica cannot open {stream:?}: {err}"),
                    )
                }
            }
        }
        if let Some(blob) = snapshot {
            // Full ship: adopt the snapshot as the new baseline, restart
            // the log at the sequence it covers.
            let snap = match DurableSnapshot::decode(blob) {
                Ok(snap) => snap,
                Err(err) => return error(ErrorCode::BadSnapshot, err.to_string()),
            };
            if snap.generation != generation || snap.seq != first_seq {
                return error(
                    ErrorCode::BadSnapshot,
                    format!(
                        "shipment claims generation {generation} seq {first_seq}, snapshot \
                         carries {} / {}",
                        snap.generation, snap.seq
                    ),
                );
            }
            // Snapshot first, then the log restart — the same commit-point
            // ordering the durable server uses everywhere.
            if let Err(err) = self.backend.write_snapshot(stream, blob) {
                return error(ErrorCode::Durability, format!("snapshot write failed: {err}"));
            }
            state.streams.remove(stream); // drop the old WAL handle first
            let writer =
                self.backend.open_wal(stream).map_err(ServiceError::from).and_then(|store| {
                    Ok(WalWriter::create(store, generation, first_seq, self.fsync)?)
                });
            match writer {
                Ok(writer) => {
                    state.streams.insert(stream.to_string(), ReplicaStream { writer });
                }
                Err(err) => {
                    return error(ErrorCode::Durability, format!("log restart failed: {err}"))
                }
            }
        }
        let Some(entry) = state.streams.get_mut(stream) else {
            if records.is_empty() {
                // Pure probe of a stream this node has nothing for.
                return Response::ReplState { generation: 0, next_seq: 0 };
            }
            return error(
                ErrorCode::Durability,
                format!("replica has no baseline for {stream:?}; ship a snapshot first"),
            );
        };
        let writer = &mut entry.writer;
        if records.is_empty() {
            return Response::ReplState {
                generation: writer.generation(),
                next_seq: writer.next_seq(),
            };
        }
        if generation != writer.generation() {
            return error(
                ErrorCode::Durability,
                format!(
                    "generation mismatch: shipment {generation}, replica {}",
                    writer.generation()
                ),
            );
        }
        let mut offset = 0usize;
        let mut seq = first_seq;
        while offset < records.len() {
            let Some((op, consumed)) = decode_record(records, offset) else {
                return error(
                    ErrorCode::Other,
                    format!("corrupt replication record at byte {offset}"),
                );
            };
            offset += consumed;
            if seq < writer.next_seq() {
                // Already durable here (a resend overlapping the tail) —
                // idempotent skip keeps the log exactly-once.
                seq += 1;
                continue;
            }
            if seq > writer.next_seq() {
                return error(
                    ErrorCode::Durability,
                    format!(
                        "sequence gap: shipment at {seq}, replica expects {}",
                        writer.next_seq()
                    ),
                );
            }
            if let Err(err) = writer.append_op(op_ref(&op)) {
                return error(ErrorCode::Durability, format!("replica append failed: {err}"));
            }
            seq += 1;
        }
        // Log-before-ack: under `FsyncPolicy::PerOp` every append above
        // synced, so this ack promises exactly what a primary ack does.
        Response::ReplState { generation: writer.generation(), next_seq: writer.next_seq() }
    }

    fn holds(&self, stream: &str) -> bool {
        let state = self.state.lock().expect("applier lock poisoned");
        state.streams.contains_key(stream)
    }
}

// ---------------------------------------------------------------------------
// Primary side
// ---------------------------------------------------------------------------

struct Session {
    client: Option<ServiceClient<Box<dyn Transport>>>,
    /// The replica's durable position as of the last ack (0 before the
    /// first attach).
    next_seq: u64,
    /// Attach attempts are skipped until this instant after a failure.
    retry_at: Option<Instant>,
}

/// Attach counters, split by how much had to be shipped — the partition
/// tests assert that a re-attach with a matching generation is
/// incremental, never a snapshot re-ship.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttachStats {
    /// Attaches that shipped the durable snapshot plus the log tail.
    pub full: u64,
    /// Attaches that resumed from the replica's own durable position.
    pub incremental: u64,
}

/// Primary-side replication sink: one session per (stream, replica peer),
/// attached lazily and healed lazily. Ship failures detach the session and
/// the primary continues degraded; the next record retries the attach
/// (with backoff), and the catch-up slice closes the gap.
pub struct Replicator {
    node: String,
    membership: Arc<Membership>,
    replication: usize,
    backend: Arc<dyn StorageBackend>,
    metrics: Arc<ServiceMetrics>,
    connect_timeout: Duration,
    op_timeout: Option<Duration>,
    fault_plan: Option<Arc<FaultPlan>>,
    sessions: Mutex<HashMap<String, HashMap<String, Session>>>,
    attach_full: AtomicU64,
    attach_incremental: AtomicU64,
}

impl Replicator {
    /// A sink for node `node`, shipping to the peers
    /// [`crate::placement::place`] assigns each stream over `membership`'s
    /// live view. `backend` is the node's own durable store (the catch-up
    /// read side); `metrics` the node's server metrics (lag/bytes series
    /// and the trace ring). `fault_plan`, when set, wraps every replication
    /// connection — the partition tests sever exactly this path.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: impl Into<String>,
        membership: Arc<Membership>,
        replication: usize,
        backend: Arc<dyn StorageBackend>,
        metrics: Arc<ServiceMetrics>,
        connect_timeout: Duration,
        op_timeout: Option<Duration>,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> Self {
        Self {
            node: node.into(),
            membership,
            replication,
            backend,
            metrics,
            connect_timeout,
            op_timeout,
            fault_plan,
            sessions: Mutex::new(HashMap::new()),
            attach_full: AtomicU64::new(0),
            attach_incremental: AtomicU64::new(0),
        }
    }

    /// Attach counters so far (full vs incremental).
    pub fn attach_stats(&self) -> AttachStats {
        AttachStats {
            full: self.attach_full.load(Ordering::Relaxed),
            incremental: self.attach_incremental.load(Ordering::Relaxed),
        }
    }

    fn connect(&self, peer: &str) -> Result<ServiceClient<Box<dyn Transport>>, ServiceError> {
        let addr = self.membership.addr_of(peer).ok_or_else(|| {
            ServiceError::InvalidConfig(format!("peer {peer:?} is not a mesh member"))
        })?;
        let tcp = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
        tcp.set_nodelay(true).ok();
        let transport: Box<dyn Transport> = match &self.fault_plan {
            Some(plan) => Box::new(FaultTransport::new(tcp, Arc::clone(plan))),
            None => Box::new(tcp),
        };
        let mut client = ServiceClient::new(transport)?;
        client.set_op_timeout(self.op_timeout)?;
        Ok(client)
    }

    /// Connects to `peer` and brings its copy of `stream` up to exactly
    /// `up_to_seq` (the sequence of the record about to ship — the
    /// primary's WAL holds everything before it and is frozen while the
    /// owning worker sits in `ship`). Generation match resumes from the
    /// replica's durable position; anything else ships snapshot + tail.
    fn attach(
        &self,
        stream: &str,
        generation: u64,
        up_to_seq: u64,
        peer: &str,
    ) -> Result<(ServiceClient<Box<dyn Transport>>, u64), ServiceError> {
        let mut client = self.connect(peer)?;
        let (replica_gen, replica_next) = client.replicate(stream, 0, 0, None, &[])?;

        let snap_bytes = self.backend.read_snapshot(stream)?.ok_or_else(|| {
            ServiceError::Snapshot(format!("stream {stream:?}: primary has no durable snapshot"))
        })?;
        let snap = DurableSnapshot::decode(&snap_bytes)?;
        let wal_bytes = self.backend.open_wal(stream)?.read_all()?;
        let parsed = parse_wal(&wal_bytes);
        let base = parsed.header.map_or(snap.seq, |h| h.base_seq);
        let log_usable =
            parsed.header.is_some_and(|h| h.generation == generation && h.base_seq <= up_to_seq);

        let incremental = log_usable
            && replica_gen == generation
            && replica_next >= base
            && replica_next <= up_to_seq;
        let (mut cursor_seq, with_snapshot) = if incremental {
            (replica_next, None)
        } else {
            if snap.generation != generation {
                return Err(ServiceError::Snapshot(format!(
                    "stream {stream:?}: snapshot generation {} behind writer generation \
                     {generation}",
                    snap.generation
                )));
            }
            (snap.seq, Some(snap_bytes.as_slice()))
        };

        // Ship the log records in [cursor_seq, up_to_seq), chunked on
        // record boundaries; the first call carries the snapshot (if any).
        let record_start = |i: usize| -> u64 {
            if i == 0 {
                WAL_HEADER_LEN as u64
            } else {
                parsed.record_ends[i - 1]
            }
        };
        let mut shipped_bytes = with_snapshot.map_or(0, |b| b.len() as u64);
        let mut snapshot_to_send = with_snapshot;
        let mut acked_next = replica_next;
        loop {
            let from = usize::try_from(cursor_seq.saturating_sub(base)).unwrap_or(usize::MAX);
            let remaining = parsed.records.len().saturating_sub(from);
            if remaining == 0 && snapshot_to_send.is_none() {
                break;
            }
            let mut take = 0usize;
            let chunk_start = record_start(from);
            let mut chunk_end = chunk_start;
            while take < remaining {
                let end = parsed.record_ends[from + take];
                if take > 0 && end - chunk_start > CATCHUP_CHUNK_BYTES {
                    break;
                }
                chunk_end = end;
                take += 1;
            }
            let chunk = &wal_bytes[usize::try_from(chunk_start).unwrap_or(usize::MAX)
                ..usize::try_from(chunk_end).unwrap_or(usize::MAX)];
            let (got_gen, got_next) =
                client.replicate(stream, generation, cursor_seq, snapshot_to_send.take(), chunk)?;
            let expect = cursor_seq + take as u64;
            if got_gen != generation || got_next != expect {
                return Err(ServiceError::Protocol(format!(
                    "catch-up desync on {stream:?}@{peer}: replica at generation {got_gen} seq \
                     {got_next}, expected {generation}/{expect}"
                )));
            }
            shipped_bytes += (chunk_end - chunk_start) as u64;
            cursor_seq = expect;
            acked_next = got_next;
        }
        if acked_next != up_to_seq {
            return Err(ServiceError::Protocol(format!(
                "catch-up on {stream:?}@{peer} ended at seq {acked_next}, primary is at \
                 {up_to_seq}"
            )));
        }

        let counter = if incremental { &self.attach_incremental } else { &self.attach_full };
        counter.fetch_add(1, Ordering::Relaxed);
        let handles = stream_replication_handles(self.metrics.registry(), stream);
        handles.shipped_bytes.add(shipped_bytes);
        let stream_arc: Arc<str> = Arc::from(stream);
        self.metrics.trace().push(
            TraceKind::ReplicaAttach,
            &stream_arc,
            generation,
            if incremental { replica_next } else { snap.seq },
        );
        Ok((client, acked_next))
    }
}

impl ReplicationSink for Replicator {
    fn ship(&self, stream: &str, generation: u64, seq: u64, record: &[u8]) {
        let live = self.membership.live_names();
        let Some(placement) = place(stream, &live, self.replication) else { return };
        // Normally we are the placement primary; after a view change we
        // may briefly disagree — still ship to the placement set minus
        // ourselves so R copies exist either way.
        let mut peers: Vec<String> = std::iter::once(placement.primary)
            .chain(placement.replicas)
            .filter(|p| *p != self.node)
            .collect();
        peers.truncate(self.replication);
        let mut sessions = self.sessions.lock().expect("replicator lock poisoned");
        let entry = sessions.entry(stream.to_string()).or_default();
        entry.retain(|peer, _| peers.iter().any(|p| p == peer));
        let handles = stream_replication_handles(self.metrics.registry(), stream);
        for peer in &peers {
            let session = entry.entry(peer.clone()).or_insert(Session {
                client: None,
                next_seq: 0,
                retry_at: None,
            });
            if session.client.is_none() || session.next_seq != seq {
                if session.retry_at.is_some_and(|at| Instant::now() < at) {
                    continue; // still backing off a recent failure
                }
                session.client = None;
                match self.attach(stream, generation, seq, peer) {
                    Ok((client, next)) => {
                        session.client = Some(client);
                        session.next_seq = next;
                        session.retry_at = None;
                    }
                    Err(_) => {
                        // Degraded: the primary keeps serving; the next
                        // record after the backoff retries the attach.
                        session.retry_at = Some(Instant::now() + ATTACH_BACKOFF);
                        continue;
                    }
                }
            }
            let Some(client) = session.client.as_mut() else { continue };
            match client.replicate(stream, generation, seq, None, record) {
                Ok((got_gen, got_next)) if got_gen == generation && got_next == seq + 1 => {
                    session.next_seq = got_next;
                    handles.shipped_bytes.add(record.len() as u64);
                }
                _ => {
                    session.client = None;
                    session.retry_at = Some(Instant::now() + ATTACH_BACKOFF);
                }
            }
        }
        let primary_next = seq + 1;
        let min_next = entry.values().map(|s| s.next_seq).min().unwrap_or(primary_next);
        handles.lag.set_u64(primary_next.saturating_sub(min_next));
    }
}
