//! Sharded parallel ingestion of a multi-million-element backlog.
//!
//! A node joining the overlay may face a huge replayed backlog of
//! identifiers before it can serve fresh samples. This example splits a
//! 10M-element adversarial stream across worker threads, merges the
//! per-shard Count-Min sketches (exactly — same-seed sketches add
//! counter-wise), seats a knowledge-free sampler on the merged frequency
//! state, and shows that the warmed sampler rejects the flooding
//! identifier from its very first live element.
//!
//! It then runs the **full parallel sampling pipeline** over the same
//! backlog: shard workers annotate every element with the exact fused
//! `(f̂_j, min_σ)` the sequential sampler would compute, and a single
//! replay thread draws the admission/eviction coins in stream order — the
//! resulting sampler (memory, coins, estimator) is bit-equal to feeding
//! the backlog one element at a time, but the sketch work ran on all
//! cores.
//!
//! Run with: `cargo run --release --example sharded_ingest`

use std::time::Instant;
use uniform_node_sampling::{FrequencyEstimator, KnowledgeFreeSampler, NodeId, NodeSampler};
use uns_sim::ShardedIngestion;
use uns_streams::adversary::peak_attack_distribution;
use uns_streams::IdStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // UNS_EXAMPLE_FAST=1 (CI) shrinks the backlog so the example still
    // exercises the full pipeline without the multi-second generation.
    let fast = std::env::var("UNS_EXAMPLE_FAST").is_ok_and(|v| v == "1");
    let backlog_len = if fast { 200_000 } else { 10_000_000usize };
    let population = if fast { 10_000 } else { 100_000usize };
    let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    println!("generating a {backlog_len}-element peak-attack backlog over {population} ids…");
    let backlog: Vec<NodeId> =
        IdStream::new(peak_attack_distribution(population)?, 7).take(backlog_len).collect();

    // Parallel sketching: one same-seed sketch per shard, merged exactly.
    let ingestion = ShardedIngestion::new(10, 5, 42, shards)?;
    let start = Instant::now();
    let sketch = ingestion.sketch_stream(&backlog)?;
    let elapsed = start.elapsed();
    println!(
        "sketched {} elements on {} shard(s) in {:.2?} ({:.1} Melem/s)",
        sketch.total(),
        shards,
        elapsed,
        backlog_len as f64 / elapsed.as_secs_f64() / 1e6
    );

    // The merged sketch is exact: estimates match single-threaded ingestion
    // counter for counter, so the flooding id's frequency is fully visible.
    println!(
        "flooder estimate f̂_0 = {}, floor min_σ = {}",
        sketch.estimate(0),
        sketch.floor_estimate()
    );

    // Seat a sampler directly on the merged sketch and go live. (The
    // one-call `ingestion.warm_sampler(&backlog, 10, 21)` is equivalent,
    // but would sketch the backlog a second time — we already have it.)
    let mut sampler = KnowledgeFreeSampler::new(10, sketch, 21)?;
    let a_flood = sampler.insertion_probability_estimate(NodeId::new(0));
    let a_rare = sampler.insertion_probability_estimate(NodeId::new(99_999));
    println!("first-element insertion probabilities: flooder {a_flood:.6}, rare id {a_rare:.3}");

    // Live traffic: the flood keeps coming, the sampler keeps the memory
    // diverse anyway.
    let mut out = Vec::new();
    let live: Vec<NodeId> =
        IdStream::new(peak_attack_distribution(population)?, 8).take(200_000).collect();
    sampler.feed_batch(&live, &mut out);
    let flood_share = out.iter().filter(|id| id.as_u64() == 0).count() as f64 / out.len() as f64;
    println!(
        "after 200k live elements ({}% of them the flooder), flooder share of output: {:.1}%",
        (live.iter().filter(|id| id.as_u64() == 0).count() * 100) / live.len(),
        flood_share * 100.0
    );
    println!("final memory Γ: {:?}", sampler.memory_contents());

    // The full pipeline: same backlog, but this time Γ's coin history is
    // replayed too, so the result is bit-equal to sequential ingestion —
    // the memory is already populated when the node goes live.
    let start = Instant::now();
    let (mut pipelined, stats) = ingestion.pipeline_ingest(&backlog, 10, 21)?;
    let elapsed = start.elapsed();
    println!(
        "full pipeline over {} elements in {:.2?} ({:.1} Melem/s): \
         {} chunks on {} shard(s), {} admissions ({:.4}% of the stream)",
        stats.elements,
        elapsed,
        backlog_len as f64 / elapsed.as_secs_f64() / 1e6,
        stats.chunks,
        stats.shards,
        stats.admitted,
        stats.admission_rate() * 100.0
    );
    println!(
        "pipeline memory Γ (bit-equal to a sequential run): {:?}",
        pipelined.memory_contents()
    );
    println!("first live sample: {:?}", pipelined.sample());
    Ok(())
}
