//! Attack resilience: every sampling strategy against the paper's three
//! attacks.
//!
//! ```text
//! cargo run --release --example attack_resilience
//! ```
//!
//! Reproduces the qualitative content of the paper's §VI on a small scale:
//! the omniscient strategy fully tolerates every attack, the knowledge-free
//! strategy comes close in constant memory, and the classic baselines
//! (reservoir sampling, min-wise sampling) fail in their characteristic
//! ways.

use uniform_node_sampling::{
    kl_gain, Frequencies, FrequencyEstimator, KnowledgeFreeSampler, MinWiseSamplerArray, NodeId,
    NodeSampler, OmniscientSampler, ReservoirSampler,
};
use uns_streams::adversary::{
    overrepresentation_attack, peak_attack_distribution, targeted_flooding_distribution,
};
use uns_streams::IdStream;

fn gain_of(sampler: &mut dyn NodeSampler, stream: &[NodeId], n: usize) -> Option<f64> {
    let mut input = Frequencies::new(n);
    let mut output = Frequencies::new(n);
    for &id in stream {
        input.record(id.as_u64());
        output.record(sampler.feed(id).as_u64());
    }
    kl_gain(input.counts(), output.counts()).ok().flatten()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 500usize;
    let m = 100_000usize;
    let attacks = [
        ("peak attack (Zipf alpha=4)", peak_attack_distribution(n)?),
        ("targeted+flooding (Poisson lambda=n/2)", targeted_flooding_distribution(n)?),
        ("50 overrepresented sybils", overrepresentation_attack(n, 50, 0.5)?),
    ];

    println!("{:<42} {:>12} {:>8}", "attack / strategy", "gain G_KL", "memory");
    println!("{}", "-".repeat(66));
    for (name, dist) in attacks {
        println!("{name}:");
        let stream: Vec<NodeId> = IdStream::new(dist.clone(), 7).take(m).collect();
        let probs = dist.probabilities().to_vec();

        let mut omni = OmniscientSampler::new(10, &probs, 1)?;
        let mut kf = KnowledgeFreeSampler::with_count_min(10, 10, 5, 2)?;
        let mut reservoir = ReservoirSampler::new(10, 3)?;
        let mut minwise = MinWiseSamplerArray::new(10, 4)?;

        let rows: Vec<(&str, Option<f64>, String)> = vec![
            ("omniscient", gain_of(&mut omni, &stream, n), format!("{} + oracle", omni.capacity())),
            (
                "knowledge-free",
                gain_of(&mut kf, &stream, n),
                format!("{} + {} cells", kf.capacity(), kf.estimator().memory_cells()),
            ),
            ("reservoir (Algorithm R)", gain_of(&mut reservoir, &stream, n), "10 slots".into()),
            ("min-wise array (Brahms)", gain_of(&mut minwise, &stream, n), "10 cells".into()),
        ];
        for (label, gain, memory) in rows {
            let gain = gain.map(|g| format!("{g:.4}")).unwrap_or_else(|| "n/a".into());
            println!("  {label:<40} {gain:>12} {memory:>12}");
        }
    }
    println!();
    println!("reading the table: 1.0 = output perfectly uniform, 0.0 = no improvement.");
    println!("the paper's strategies stay near 1.0; the baselines do not.");
    Ok(())
}
