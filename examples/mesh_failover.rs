//! Kill the primary of a replicated mesh mid-load and watch the replica
//! take over without losing an acked op.
//!
//! ```text
//! cargo run --release --example mesh_failover [batches]
//! ```
//!
//! Brings up a 3-node mesh (R=1, fsync per op) on loopback, feeds a
//! stream through a partition-aware resilient client, kills the
//! placement primary halfway, and keeps feeding: the heartbeat detector
//! marks the primary dead, its first replica promotes (generation bump),
//! and the client rotates endpoints until the promoted node answers.
//! Prints the client's retry/failover counters and the promoted node's
//! replication stats at the end.
//!
//! `UNS_EXAMPLE_FAST=1` shrinks the run (CI uses this).

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use uns_core::NodeId;
use uns_mesh::{
    client_endpoints, place, FailoverConfig, Membership, MeshConfig, MeshNode, NodeInfo,
};
use uns_service::protocol::{EstimatorKind, HashFamilyKind, StreamConfig};
use uns_service::resilient::{Delivery, ResilientClient, RetryPolicy};
use uns_service::storage::MemBackend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::var("UNS_EXAMPLE_FAST").is_ok_and(|v| v == "1");
    let batches: u64 =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(if fast { 24 } else { 200 });
    let batch_len: u64 = 64;
    let stream = "mesh-demo";

    // Three nodes on ephemeral loopback ports; each owns its own
    // membership view, as separate processes would.
    let listeners: Vec<TcpListener> =
        (0..3).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    let infos: Vec<NodeInfo> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| Ok(NodeInfo { name: format!("n{i}"), addr: l.local_addr()? }))
        .collect::<Result<_, std::io::Error>>()?;
    let config = MeshConfig {
        failover: FailoverConfig {
            interval: Duration::from_millis(15),
            probe_timeout: Duration::from_millis(100),
            miss_threshold: 3,
            seed: 0xD0A,
        },
        ..MeshConfig::default()
    };
    let nodes: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            MeshNode::start(
                &format!("n{i}"),
                listener,
                Arc::new(MemBackend::new()),
                Arc::new(Membership::new(infos.clone())),
                &config,
            )
        })
        .collect::<Result<_, _>>()?;
    for node in &nodes {
        node.start_failover(config.failover);
    }

    let membership = Membership::new(infos.clone());
    let names: Vec<String> = infos.iter().map(|n| n.name.clone()).collect();
    let placement = place(stream, &names, 1).expect("live nodes");
    println!("placement: primary={} replicas={:?}", placement.primary, placement.replicas);

    let connects: Vec<_> = client_endpoints(&membership, stream, 1)
        .into_iter()
        .map(|addr| {
            move || {
                let tcp = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
                tcp.set_nodelay(true).ok();
                Ok(tcp)
            }
        })
        .collect();
    let policy = RetryPolicy {
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(100),
        retry_budget: 400,
        op_timeout: Some(Duration::from_millis(750)),
        ..RetryPolicy::default()
    };
    let mut client = ResilientClient::with_endpoints(policy, connects);
    client.create_stream(
        stream,
        &StreamConfig {
            kind: EstimatorKind::CountMin,
            capacity: 16,
            width: 128,
            depth: 4,
            seed: 11,
            family: HashFamilyKind::Mersenne,
        },
    )?;

    let primary_index = names.iter().position(|n| *n == placement.primary).expect("member");
    let mut reply_lost = 0u64;
    for b in 0..batches {
        if b == batches / 2 {
            println!("killing primary {} after batch {b}", placement.primary);
            nodes[primary_index].stop();
        }
        let ids: Vec<NodeId> = (0..batch_len)
            .map(|i| {
                let mut x = (b * batch_len + i).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED;
                x ^= x >> 29;
                NodeId::new(x)
            })
            .collect();
        match client.feed_batch(stream, &ids)? {
            Delivery::Acked(ack) => assert_eq!(ack.position, (b + 1) * batch_len),
            Delivery::AppliedReplyLost { position } => {
                assert_eq!(position, (b + 1) * batch_len);
                reply_lost += 1;
            }
        }
    }

    let stats = client.retry_stats();
    println!(
        "fed {batches} batches ({} elements), every ack exactly-once; \
         {reply_lost} replies lost to the hand-off",
        batches * batch_len
    );
    println!(
        "client: failovers={} reconnects={} resyncs={} busy_retries={}",
        stats.failovers, stats.reconnects, stats.resyncs, stats.busy_retries
    );
    let promoted_index = names.iter().position(|n| *n == placement.replicas[0]).expect("member");
    let promoted = &nodes[promoted_index];
    let final_stats =
        uns_service::client::ServiceClient::new(promoted.server().connect_in_process())
            .and_then(|mut c| c.stats(stream));
    match final_stats {
        Ok(s) => println!(
            "promoted node {}: position={} failovers={}",
            promoted.name(),
            s.pipeline.elements,
            s.replication.failovers
        ),
        Err(err) => println!("promoted node stats unavailable: {err}"),
    }
    assert!(stats.failovers >= 1, "the client never rotated endpoints");
    for node in &nodes {
        node.stop();
    }
    Ok(())
}
