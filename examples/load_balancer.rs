//! Load balancing over sampled hosts — the paper's opening motivation.
//!
//! ```text
//! cargo run --release --example load_balancer
//! ```
//!
//! "Choosing a host at random among those that are available is often a
//! choice that provides performance close to that offered by more complex
//! selection criteria" (§I) — *provided the random choice is uniform*. This
//! example dispatches 60 000 jobs to hosts picked from a membership stream
//! that a colluding clique floods with its own identifiers. Dispatching
//! straight from the stream funnels most jobs to the clique; dispatching
//! from the sampling service's output keeps the load flat.

use uniform_node_sampling::{Frequencies, KnowledgeFreeSampler, NodeId, NodeSampler};
use uns_streams::adversary::overrepresentation_attack;
use uns_streams::IdStream;

fn gini(counts: &[u64]) -> f64 {
    // Gini coefficient of the load distribution (0 = perfectly even).
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hosts = 100usize;
    let jobs = 60_000usize;
    // A clique of 5 hosts floods the membership stream with its own ids,
    // aiming to attract the traffic (e.g. to bias a cache or censor).
    let dist = overrepresentation_attack(hosts, 5, 0.6)?;
    let mut membership = IdStream::new(dist, 3);

    let mut sampler = KnowledgeFreeSampler::with_count_min(16, 16, 5, 4)?;
    let mut naive_load = Frequencies::new(hosts);
    let mut sampled_load = Frequencies::new(hosts);

    for _ in 0..jobs {
        let advertised: NodeId = membership.next().expect("stream is infinite");
        // Naive dispatcher: send the job to whoever advertised last.
        naive_load.record(advertised.as_u64());
        // Robust dispatcher: send the job to the sampling service's pick.
        sampled_load.record(sampler.feed(advertised).as_u64());
    }

    let clique_naive: u64 = (0..5).map(|id| naive_load.count(id)).sum();
    let clique_sampled: u64 = (0..5).map(|id| sampled_load.count(id)).sum();

    println!("{jobs} jobs over {hosts} hosts; 5 colluding hosts flood the membership stream\n");
    println!("{:<26} {:>14} {:>16} {:>8}", "dispatcher", "clique load", "hottest host", "gini");
    println!("{}", "-".repeat(68));
    println!(
        "{:<26} {:>12.1}% {:>15.1}% {:>8.3}",
        "naive (raw stream)",
        clique_naive as f64 * 100.0 / jobs as f64,
        naive_load.max_frequency() as f64 * 100.0 / jobs as f64,
        gini(naive_load.counts()),
    );
    println!(
        "{:<26} {:>12.1}% {:>15.1}% {:>8.3}",
        "uniform sampling service",
        clique_sampled as f64 * 100.0 / jobs as f64,
        sampled_load.max_frequency() as f64 * 100.0 / jobs as f64,
        gini(sampled_load.counts()),
    );
    println!("\nfair clique share would be 5.0%.");
    Ok(())
}
