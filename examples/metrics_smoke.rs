//! CI smoke check for the live metrics surface, end to end over real TCP.
//!
//! ```text
//! cargo run --release --example metrics_smoke
//! ```
//!
//! Starts a **durable** server (WAL + snapshots on runner disk), serves
//! both listeners — the framed wire protocol and the plain-HTTP admin
//! surface — runs a short load-generator burst, then scrapes
//! `GET /metrics` over a real socket and asserts that:
//!
//! * the exposition parses under the strict parser (every line, every
//!   label, every histogram bucket);
//! * the key per-stream series are present and nonzero (elements fed,
//!   WAL records appended, op latency observed, floor published);
//! * the wire `Metrics` opcode returns the same families, and its
//!   counters agree with the `Stats` opcode bit for bit;
//! * `/healthz` answers and `/trace` carries the stream-creation event.
//!
//! Exits nonzero on any violation, so CI catches a silently broken
//! scrape path, not just a broken build.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use uns_metrics::parse::find;
use uns_service::loadgen::{create_and_run, LoadgenConfig, LoadgenRetry, Workload};
use uns_service::protocol::{EstimatorKind, HashFamilyKind, StreamConfig};
use uns_service::server::{DurabilityConfig, Server, ServerConfig};
use uns_service::{DirBackend, ServiceClient};

fn scrape(addr: std::net::SocketAddr, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    let mut conn = TcpStream::connect(addr)?;
    write!(conn, "GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n")?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or("no header/body split")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("GET {path}: {head}").into());
    }
    Ok(body.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("uns-metrics-smoke-{}", std::process::id()));
    let backend = Arc::new(DirBackend::create(&dir)?);
    let server = Server::start_durable(
        ServerConfig { workers: 2, queue_depth: 16 },
        DurabilityConfig::new(backend),
    )?;

    let wire = TcpListener::bind("127.0.0.1:0")?;
    let wire_addr = wire.local_addr()?;
    let admin = TcpListener::bind("127.0.0.1:0")?;
    let admin_addr = admin.local_addr()?;

    let result = std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        scope.spawn(|| server.serve(wire));
        scope.spawn(|| server.serve_metrics_http(admin));

        let connect = || {
            let stream = TcpStream::connect(wire_addr).map_err(uns_service::ServiceError::from)?;
            stream.set_nodelay(true).map_err(uns_service::ServiceError::from)?;
            Ok(stream)
        };
        let stream_config = StreamConfig {
            kind: EstimatorKind::CountMin,
            capacity: 10,
            width: 10,
            depth: 5,
            seed: 42,
            family: HashFamilyKind::Mersenne,
        };
        // Enough batches (64 × 1024 elements per connection) to complete
        // several floor-trajectory windows.
        let config = LoadgenConfig {
            connections: 2,
            elements_per_connection: 64 * 1024,
            batch_len: 1024,
            workload: Workload::Uniform { domain: 50_000 },
            seed: 7,
            feed: true,
            retry: LoadgenRetry::default(),
        };
        let report = create_and_run(connect, "smoke", &stream_config, &config)?;
        println!(
            "loadgen: {} elements at {:.2} Melem/s (durable, per-op fsync)",
            report.elements,
            report.melem_per_s()
        );

        // --- HTTP scrape: strict-parse, then assert the key series. ---
        let exposition = scrape(admin_addr, "/metrics")?;
        let samples = uns_metrics::parse_exposition(&exposition)
            .map_err(|err| format!("exposition rejected by strict parser: {err}"))?;
        println!("GET /metrics: {} bytes, {} samples, parser ok", exposition.len(), samples.len());

        let labels = [("stream", "smoke")];
        let nonzero = |family: &str| -> Result<u64, Box<dyn std::error::Error>> {
            let sample =
                find(&samples, family, &labels).ok_or_else(|| format!("missing {family}"))?;
            let value = sample.value_u64().ok_or_else(|| format!("{family} not integral"))?;
            if value == 0 {
                return Err(
                    format!("{family} is zero after a {}-element run", report.elements).into()
                );
            }
            Ok(value)
        };
        let elements = nonzero(uns_sim::metrics::METRIC_STREAM_ELEMENTS)?;
        let wal_records = nonzero(uns_service::metrics::METRIC_STREAM_WAL_RECORDS)?;
        let floor = nonzero(uns_service::metrics::METRIC_STREAM_FLOOR)?;
        let window_min = nonzero(uns_service::metrics::METRIC_STREAM_FLOOR_WINDOW_MIN)?;
        let feed_count = find(&samples, "uns_op_latency_nanos_count", &[("op", "feed")])
            .and_then(|s| s.value_u64())
            .ok_or("missing feed latency count")?;
        if feed_count == 0 {
            return Err("uns_op_latency_nanos_count{op=\"feed\"} is zero".into());
        }
        println!(
            "key series: elements={elements} wal_records={wal_records} floor={floor} \
             floor_window_min={window_min} feed_latency_count={feed_count}"
        );

        // --- Wire opcode agrees with Stats, bit for bit. ---
        let mut client = ServiceClient::new(connect()?)?;
        let stats = client.stats("smoke")?;
        let wire_samples = uns_metrics::parse_exposition(&client.metrics()?)?;
        for (family, want) in [
            (uns_sim::metrics::METRIC_STREAM_ELEMENTS, stats.pipeline.elements),
            (uns_service::metrics::METRIC_STREAM_WAL_RECORDS, stats.durability.wal_records),
            (uns_service::metrics::METRIC_STREAM_BUSY, stats.busy_rejections),
        ] {
            let got = find(&wire_samples, family, &labels).and_then(|s| s.value_u64());
            if got != Some(want) {
                return Err(
                    format!("{family}: wire exposition {got:?} != Stats opcode {want}").into()
                );
            }
        }
        println!("wire Metrics opcode agrees with Stats opcode");

        // --- The other admin routes answer. ---
        if scrape(admin_addr, "/healthz")? != "ok\n" {
            return Err("/healthz did not answer ok".into());
        }
        let trace = scrape(admin_addr, "/trace")?;
        if !trace.contains("stream_created") {
            return Err(format!("/trace lacks the creation event:\n{trace}").into());
        }
        println!("/healthz ok, /trace carries {} lines. ok.", trace.lines().count());

        server.stop();
        Ok(())
    });
    std::fs::remove_dir_all(&dir).ok();
    result
}
