//! Prints the adversarial conformance matrix: every scenario ×
//! estimator kind, with χ² uniformity p-values, total-variation and KL
//! divergence of the sampler's (thinned) output stream, plus the
//! pass-through negative control.
//!
//! This is the human-readable companion of `tests/conformance.rs` — same
//! scenarios, same measurement protocol — useful for re-calibrating the
//! harness thresholds after sampler changes.
//!
//! ```text
//! cargo run --release --example conformance_matrix            # full scale
//! UNS_CONF_FAST=1 cargo run --release --example conformance_matrix
//! ```
//!
//! Environment knobs (all optional): `UNS_CONF_FAST=1` shrinks the matrix;
//! `UNS_CONF_DOMAIN`, `UNS_CONF_LEN`, `UNS_CONF_C`, `UNS_CONF_K`,
//! `UNS_CONF_S`, `UNS_CONF_STRIDE` override the defaults for sweeps;
//! `UNS_CONF_HASH_FAMILY=multiply-shift` (or `ms`) swaps the sketches'
//! rows from the Mersenne Carter–Wegman family to multiply-shift — the
//! A/B axis behind the README's hash-family verdict table.

use uns_core::{KnowledgeFreeSampler, NodeId, NodeSampler, PassthroughSampler};
use uns_sim::{measure_uniformity, Scenario, ScenarioKind};
use uns_sketch::{ExactFrequencyOracle, HashFamilyKind};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let fast = std::env::var("UNS_CONF_FAST").is_ok_and(|v| v == "1");
    let domain = env_usize("UNS_CONF_DOMAIN", if fast { 150 } else { 300 });
    let len = env_usize("UNS_CONF_LEN", if fast { 48_000 } else { 240_000 });
    let capacity = env_usize("UNS_CONF_C", 10);
    // Sketch widths scale with the population: absolute χ² uniformity
    // requires estimator accuracy in proportion to the domain (see the
    // README's conformance section — the paper-scale k = 10 delivers the
    // *relative* G_KL gains, not absolute uniformity at this test power).
    // The Count sketch runs wider: its admission floor is the mean row
    // load total/k, so k also controls memory turnover.
    let cm_width = env_usize("UNS_CONF_K_CM", env_usize("UNS_CONF_K", 4 * domain));
    let cs_width = env_usize("UNS_CONF_K_CS", env_usize("UNS_CONF_K", 5 * domain));
    let depth = env_usize("UNS_CONF_S", 5);
    let stride = env_usize("UNS_CONF_STRIDE", if fast { 25 } else { 50 });
    let seed = env_usize("UNS_CONF_SEED", 0x5eed) as u64;
    let family = match std::env::var("UNS_CONF_HASH_FAMILY").as_deref() {
        Ok("multiply-shift" | "ms") => HashFamilyKind::MultiplyShift,
        _ => HashFamilyKind::Mersenne,
    };

    println!(
        "conformance matrix: domain = {domain}, len = {len}, c = {capacity}, \
         k_cm = {cm_width}, k_cs = {cs_width}, s = {depth}, stride = {stride}, \
         family = {family:?}"
    );
    println!(
        "{:>18} {:>12} {:>10} {:>7} {:>8} {:>7} {:>6}",
        "scenario", "estimator", "p-value", "tv", "kl", "leak", "n"
    );

    for scenario in Scenario::matrix(domain, len) {
        let stream = scenario.synthesize(seed);
        let samplers: [(&str, Box<dyn NodeSampler>); 4] = [
            (
                "count-min",
                Box::new(
                    KnowledgeFreeSampler::with_count_min_family(
                        capacity, cm_width, depth, seed, family,
                    )
                    .unwrap(),
                ),
            ),
            (
                "count-sketch",
                Box::new(
                    KnowledgeFreeSampler::with_count_sketch_family(
                        capacity, cs_width, depth, seed, family,
                    )
                    .unwrap(),
                ),
            ),
            (
                "exact",
                Box::new(
                    KnowledgeFreeSampler::new(capacity, ExactFrequencyOracle::new(), seed).unwrap(),
                ),
            ),
            ("passthrough", Box::new(PassthroughSampler::new())),
        ];
        for (name, mut sampler) in samplers {
            let outputs: Vec<NodeId> = stream.ids.iter().map(|&id| sampler.feed(id)).collect();
            let report =
                measure_uniformity(&stream, &outputs, stride * scenario.kind.stride_factor());
            println!(
                "{:>18} {:>12} {:>10.2e} {:>7.3} {:>8.4} {:>7.3} {:>6}",
                scenario.kind.name(),
                name,
                report.p_value,
                report.tv,
                report.kl,
                report.leaked_share,
                report.samples
            );
        }
    }
    println!(
        "\nthe pass-through rows are the negative control: the same measurement \
         must reject them under the attack scenarios (tiny p, large tv)."
    );
    let _ = ScenarioKind::Uniform; // re-exported for doc-link stability
}
