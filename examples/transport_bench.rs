//! Head-to-head of the three ways a client can reach the service: the
//! in-process pipe, blocking TCP (thread per connection), and reactor
//! TCP (one readiness thread for every socket).
//!
//! ```text
//! cargo run --release --example transport_bench
//! ```
//!
//! For each transport the bench reports three numbers:
//!
//! - **connect**: median wall-clock to open a connection (including the
//!   accept-side setup — a spawned thread for blocking TCP, an epoll
//!   registration for the reactor). The median, because a connect burst
//!   that outruns the kernel's listen backlog turns a dropped SYN into a
//!   1-second retransmit stall — real, but one such outlier would swamp
//!   a mean;
//! - **first byte**: best-of-eight latency from an established connection
//!   to the first reply byte of a trivial request;
//! - **steady state**: feed throughput over four concurrent connections,
//!   the same workload `service_loadgen` runs.
//!
//! The numbers land in README's "Transports" table and BENCH_*.json.
//! `UNS_BENCH_FAST=1` shrinks the run to a smoke test (CI uses this).

use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use uns_service::loadgen::{create_and_run, LoadgenConfig, LoadgenRetry, Workload};
use uns_service::protocol::{EstimatorKind, HashFamilyKind, StreamConfig};
use uns_service::server::{Server, ServerConfig};
use uns_service::{ReactorConfig, ServiceClient, ServiceError, Transport};

struct Row {
    label: &'static str,
    connect: Duration,
    connect_p99: Duration,
    first_byte: Duration,
    melem_per_s: f64,
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        kind: EstimatorKind::CountMin,
        capacity: 10,
        width: 10,
        depth: 5,
        seed: 42,
        family: HashFamilyKind::Mersenne,
    }
}

/// Benches one transport against a freshly started server.
fn bench<T, F>(
    label: &'static str,
    fast: bool,
    server: &Server,
    connect: F,
) -> Result<Row, Box<dyn std::error::Error>>
where
    T: Transport + 'static,
    F: Fn() -> Result<T, ServiceError> + Sync,
{
    // Connection setup cost: median over a burst of opens. Each
    // connection is dropped immediately so the burst measures setup (and
    // teardown bookkeeping on the accept side), not fd hoarding.
    let opens = if fast { 16 } else { 256 };
    let mut costs = Vec::with_capacity(opens);
    for _ in 0..opens {
        let started = Instant::now();
        drop(connect()?);
        costs.push(started.elapsed());
    }
    costs.sort();
    let connect_cost = costs[opens / 2];
    let connect_p99 = costs[opens * 99 / 100];

    // First-byte latency on an established connection: best of eight
    // trivial round trips, so scheduler noise doesn't dominate.
    let mut client = ServiceClient::new(connect()?)?;
    client.create_stream("probe", &stream_config())?;
    let mut first_byte = Duration::MAX;
    for _ in 0..8 {
        let started = Instant::now();
        client.floor_estimate("probe")?;
        first_byte = first_byte.min(started.elapsed());
    }

    // Steady state: the loadgen uniform workload over four connections.
    let config = LoadgenConfig {
        connections: 4,
        elements_per_connection: if fast { 5_000 } else { 250_000 },
        batch_len: 4096,
        workload: Workload::Uniform { domain: 100_000 },
        seed: 7,
        feed: true,
        retry: LoadgenRetry::default(),
    };
    let report = create_and_run(&connect, "steady", &stream_config(), &config)?;

    server.stop();
    Ok(Row {
        label,
        connect: connect_cost,
        connect_p99,
        first_byte,
        melem_per_s: report.melem_per_s(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::var("UNS_BENCH_FAST").is_ok_and(|v| v == "1");
    let mut rows = Vec::new();

    // In-process pipe: no sockets at all.
    {
        let server = Server::start(ServerConfig::default());
        rows.push(bench("pipe", fast, &server, || Ok(server.connect_in_process()))?);
    }

    // Blocking TCP: the accept loop spawns a thread per connection.
    {
        let server = Server::start(ServerConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let row = std::thread::scope(|scope| {
            scope.spawn(|| server.serve(listener));
            bench("tcp (blocking)", fast, &server, || {
                let conn = TcpStream::connect(addr).map_err(ServiceError::from)?;
                conn.set_nodelay(true).map_err(ServiceError::from)?;
                Ok(conn)
            })
        })?;
        rows.push(row);
    }

    // Reactor TCP: one readiness thread owns every socket.
    if epoll::supported() {
        let server = Server::start(ServerConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let row = std::thread::scope(|scope| {
            scope.spawn(|| {
                server.serve_reactor(listener, ReactorConfig::default()).expect("reactor")
            });
            bench("tcp (reactor)", fast, &server, || {
                let conn = TcpStream::connect(addr).map_err(ServiceError::from)?;
                conn.set_nodelay(true).map_err(ServiceError::from)?;
                Ok(conn)
            })
        })?;
        rows.push(row);
    } else {
        eprintln!("skipping reactor: the vendored epoll poller is unsupported here");
    }

    println!(
        "{:>16}  {:>12}  {:>13}  {:>12}  {:>14}",
        "transport", "connect p50", "connect p99", "first byte", "steady state"
    );
    for row in &rows {
        println!(
            "{:>16}  {:>10.1}µs  {:>11.1}µs  {:>10.1}µs  {:>8.2} Melem/s",
            row.label,
            row.connect.as_secs_f64() * 1e6,
            row.connect_p99.as_secs_f64() * 1e6,
            row.first_byte.as_secs_f64() * 1e6,
            row.melem_per_s,
        );
    }
    Ok(())
}
