//! Gossip overlay under a sybil flood: the sampling service as the
//! membership layer of an epidemic protocol.
//!
//! ```text
//! cargo run --release --example gossip_overlay
//! ```
//!
//! Simulates the system the paper motivates (§I): every correct node's view
//! is built by its local sampling service; Byzantine nodes flood sybil
//! identifiers trying to eclipse correct nodes and partition the overlay.
//! Watch the sybil contamination of views and the overlay's connectivity,
//! round by round, for the knowledge-free strategy and for the vulnerable
//! reservoir baseline.

use uniform_node_sampling::{MaliciousStrategy, SamplerKind, SimConfig, Simulation};

fn run(label: &str, sampler: SamplerKind) -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig::builder()
        .correct_nodes(100)
        .malicious_nodes(8)
        .attack(MaliciousStrategy::Flood { distinct_sybils: 12, batch_per_round: 10 })
        .view_size(12)
        .fanout(3)
        .rounds(40)
        .churn_rounds(5)
        .churn_rate(0.05)
        .sampler(sampler)
        .seed(11)
        .build()?;
    let mut sim = Simulation::new(config)?;

    println!("--- {label} ---");
    println!("{:>5} {:>14} {:>12} {:>10}", "round", "sybil in views", "sybil input", "connected");
    let total_rounds = 45;
    for round in 1..=total_rounds {
        sim.step();
        if round % 5 == 0 || round == total_rounds {
            let m = sim.metrics();
            println!(
                "{round:>5} {:>13.1}% {:>11.1}% {:>10}",
                m.mean_sybil_view_share * 100.0,
                m.mean_sybil_input_share * 100.0,
                m.correct_subgraph_connected
            );
        }
    }
    let m = sim.metrics();
    println!(
        "final: in-degree mean {:.1} (min {}, max {}), {} gossip messages\n",
        m.in_degree_mean, m.in_degree_min, m.in_degree_max, m.total_messages
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("8 Byzantine nodes flood 12 sybil ids at high volume into a 100-node overlay.\n");
    run(
        "knowledge-free sampling service (paper, Algorithm 3)",
        SamplerKind::KnowledgeFree { width: 10, depth: 5 },
    )?;
    run("reservoir sampling baseline (Vitter's Algorithm R)", SamplerKind::Reservoir)?;
    println!("the sampling service caps sybil residency near the fair share;");
    println!("the reservoir hands the adversary the overlay.");
    Ok(())
}
