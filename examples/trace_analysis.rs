//! Trace analysis: Table II statistics and sampling on real-world-shaped
//! workloads.
//!
//! ```text
//! cargo run --release --example trace_analysis [path/to/trace.txt]
//! ```
//!
//! Without arguments, generates the three seeded surrogates calibrated to
//! the paper's Table II (NASA, ClarkNet, Saskatchewan HTTP logs) at 1/50
//! scale, prints their statistics, and runs the knowledge-free sampling
//! service over each. With a path argument, analyses your own trace file
//! instead (one identifier or token per line).

use std::path::Path;
use uniform_node_sampling::{Frequencies, KnowledgeFreeSampler, NodeId, NodeSampler};
use uns_streams::traces::{load_trace, stats_of, PAPER_TRACES};

fn analyse(name: &str, stream: &[NodeId]) {
    let stats = stats_of(stream);
    println!(
        "{name}: m = {}, distinct = {}, max frequency = {}",
        stats.ids, stats.distinct, stats.max_frequency
    );

    // Remap arbitrary 64-bit ids onto 0..n for histogramming.
    let mut ids: Vec<u64> = stream.iter().map(|id| id.as_u64()).collect();
    ids.sort_unstable();
    ids.dedup();
    let index = |id: u64| ids.binary_search(&id).expect("id present") as u64;
    let n = ids.len();

    let mut input = Frequencies::new(n);
    let mut output = Frequencies::new(n);
    // Paper's Fig. 12 sizing: c = k = ⌈log₂ n⌉.
    let c = (n as f64).log2().ceil() as usize;
    let mut sampler =
        KnowledgeFreeSampler::with_count_min(c.max(2), c.max(2), 5, 1).expect("valid parameters");
    for &id in stream {
        input.record(index(id.as_u64()));
        output.record(index(sampler.feed(id).as_u64()));
    }
    println!(
        "  input:  KL vs uniform = {:.4}, top id holds {:.2}% of the stream",
        input.kl_vs_uniform().unwrap_or(f64::NAN),
        input.max_frequency() as f64 * 100.0 / input.total() as f64,
    );
    println!(
        "  output: KL vs uniform = {:.4}, top id holds {:.2}% (c = k = {c}, s = 5)",
        output.kl_vs_uniform().unwrap_or(f64::NAN),
        output.max_frequency() as f64 * 100.0 / output.total() as f64,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = std::env::args().nth(1) {
        let stream = load_trace(Path::new(&path))?;
        if stream.is_empty() {
            return Err(format!("trace {path} is empty").into());
        }
        analyse(&path, &stream);
        return Ok(());
    }
    println!("no trace given; using 1/50-scale surrogates of the paper's Table II traces.\n");
    for spec in PAPER_TRACES {
        let scaled = spec.scaled(50);
        let stream = scaled.generate(7)?;
        analyse(spec.name, &stream);
        println!();
    }
    Ok(())
}
