//! Load-generate the networked sampling service and report Melem/s.
//!
//! ```text
//! cargo run --release --example service_loadgen [connections] [elements_per_connection]
//! ```
//!
//! Starts the multi-tenant server on an ephemeral localhost TCP port,
//! creates one stream per workload shape (uniform honest traffic, the
//! paper's Fig. 7a peak attack, explicit sybil injection), replays each
//! over N concurrent connections, and prints service-path throughput —
//! the number BENCH_*.json records next to the library-path numbers. Ends
//! with a snapshot → restore round trip over the wire to show state
//! surviving a "restart".
//!
//! `UNS_BENCH_FAST=1` shrinks the run to a smoke test (CI uses this).

use std::net::{TcpListener, TcpStream};
use uns_service::loadgen::{create_and_run, LoadgenConfig, LoadgenRetry, Workload};
use uns_service::protocol::{EstimatorKind, HashFamilyKind, StreamConfig};
use uns_service::server::{Server, ServerConfig};
use uns_service::ServiceClient;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::var("UNS_BENCH_FAST").is_ok_and(|v| v == "1");
    let connections: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(if fast { 2 } else { 4 });
    let elements: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(if fast {
        20_000
    } else {
        1_000_000
    });

    let server = Server::start(ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        scope.spawn(|| server.serve(listener));
        let connect = || {
            let stream = TcpStream::connect(addr).map_err(uns_service::ServiceError::from)?;
            stream.set_nodelay(true).map_err(uns_service::ServiceError::from)?;
            Ok(stream)
        };

        println!(
            "server on {addr} ({} workers); {connections} connections × {elements} elements\n",
            server.config().workers
        );
        let stream_config = StreamConfig {
            kind: EstimatorKind::CountMin,
            capacity: 10,
            width: 10,
            depth: 5,
            seed: 42,
            family: HashFamilyKind::Mersenne,
        };
        let workloads: [(&str, Workload); 3] = [
            ("uniform", Workload::Uniform { domain: 100_000 }),
            ("peak-attack", Workload::PeakAttack { domain: 100_000 }),
            ("sybil-injection", Workload::Sybil { domain: 100_000, distinct: 38 }),
        ];
        for (name, workload) in workloads {
            let config = LoadgenConfig {
                connections,
                elements_per_connection: elements / connections,
                batch_len: 4096,
                workload,
                seed: 7,
                feed: true,
                retry: LoadgenRetry::default(),
            };
            let report = create_and_run(connect, name, &stream_config, &config)?;
            println!(
                "{name:>16}: {:>8.2} Melem/s  ({} elements in {:.3}s, {} busy retries, \
                 {} batches abandoned, admission rate {:.2}%)",
                report.melem_per_s(),
                report.elements,
                report.elapsed.as_secs_f64(),
                report.busy_retries,
                report.abandoned_batches,
                report.stats.pipeline.admission_rate() * 100.0,
            );
        }

        // Snapshot → restore over the wire: the restored stream's future
        // equals the original's.
        let mut client = ServiceClient::new(connect()?)?;
        let blob = client.snapshot("peak-attack")?;
        client.restore("peak-attack-restored", &blob)?;
        let probe: Vec<_> = (0..1_000u64).map(uniform_node_sampling::NodeId::new).collect();
        let out_a = client.feed_batch("peak-attack", &probe)?.outputs;
        let out_b = client.feed_batch("peak-attack-restored", &probe)?.outputs;
        assert_eq!(out_a, out_b, "restored stream diverged");
        println!(
            "\nsnapshot/restore: {} bytes captured, restored stream bit-equal over {} probe \
             elements. ok.",
            blob.len(),
            probe.len()
        );
        server.stop();
        Ok(())
    })
}
