//! Load-generate the networked sampling service and report Melem/s.
//!
//! ```text
//! cargo run --release --example service_loadgen [connections] [elements_per_connection] [--metrics-dump] [--reactor]
//! ```
//!
//! Starts the multi-tenant server on an ephemeral localhost TCP port,
//! creates one stream per workload shape (uniform honest traffic, the
//! paper's Fig. 7a peak attack, explicit sybil injection), replays each
//! over N concurrent connections, and prints service-path throughput —
//! the number BENCH_*.json records next to the library-path numbers. Ends
//! with a snapshot → restore round trip over the wire to show state
//! surviving a "restart".
//!
//! With `--metrics-dump`, the server's `GET /metrics` admin listener is
//! started too, each run's client-side counters are exported into the
//! same registry, and the full Prometheus exposition is scraped over real
//! TCP and printed at end-of-run.
//!
//! With `--reactor`, connections are served by the single-threaded
//! readiness reactor instead of a thread per connection — same wire
//! protocol, same worker pool, directly comparable numbers.
//!
//! `UNS_BENCH_FAST=1` shrinks the run to a smoke test (CI uses this).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use uns_service::loadgen::{create_and_run, LoadgenConfig, LoadgenRetry, Workload};
use uns_service::protocol::{EstimatorKind, HashFamilyKind, StreamConfig};
use uns_service::server::{Server, ServerConfig};
use uns_service::ServiceClient;

/// One `GET path` request against the admin listener; returns the body.
fn scrape(addr: std::net::SocketAddr, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    let mut conn = TcpStream::connect(addr)?;
    write!(conn, "GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n")?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or("no header/body split")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("scrape of {path} failed: {head}").into());
    }
    Ok(body.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::var("UNS_BENCH_FAST").is_ok_and(|v| v == "1");
    let mut positional = Vec::new();
    let mut metrics_dump = false;
    let mut reactor = false;
    for arg in std::env::args().skip(1) {
        if arg == "--metrics-dump" {
            metrics_dump = true;
        } else if arg == "--reactor" {
            reactor = true;
        } else {
            positional.push(arg);
        }
    }
    if reactor && !epoll::supported() {
        return Err("--reactor requires epoll (Linux only)".into());
    }
    let connections: usize =
        positional.first().and_then(|v| v.parse().ok()).unwrap_or(if fast { 2 } else { 4 });
    let elements: usize = positional.get(1).and_then(|v| v.parse().ok()).unwrap_or(if fast {
        20_000
    } else {
        1_000_000
    });

    let server = Server::start(ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let metrics_listener =
        if metrics_dump { Some(TcpListener::bind("127.0.0.1:0")?) } else { None };
    let metrics_addr = metrics_listener.as_ref().map(|l| l.local_addr()).transpose()?;
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        if reactor {
            scope.spawn(|| {
                server
                    .serve_reactor(listener, uns_service::ReactorConfig::default())
                    .expect("reactor");
            });
        } else {
            scope.spawn(|| server.serve(listener));
        }
        if let Some(metrics_listener) = metrics_listener {
            scope.spawn(|| server.serve_metrics_http(metrics_listener));
        }
        let connect = || {
            let stream = TcpStream::connect(addr).map_err(uns_service::ServiceError::from)?;
            stream.set_nodelay(true).map_err(uns_service::ServiceError::from)?;
            Ok(stream)
        };

        println!(
            "server on {addr} ({} workers, {} transport); {connections} connections × \
             {elements} elements\n",
            server.config().workers,
            if reactor { "reactor" } else { "thread-per-connection" }
        );
        let stream_config = StreamConfig {
            kind: EstimatorKind::CountMin,
            capacity: 10,
            width: 10,
            depth: 5,
            seed: 42,
            family: HashFamilyKind::Mersenne,
        };
        let workloads: [(&str, Workload); 3] = [
            ("uniform", Workload::Uniform { domain: 100_000 }),
            ("peak-attack", Workload::PeakAttack { domain: 100_000 }),
            ("sybil-injection", Workload::Sybil { domain: 100_000, distinct: 38 }),
        ];
        for (name, workload) in workloads {
            let config = LoadgenConfig {
                connections,
                elements_per_connection: elements / connections,
                batch_len: 4096,
                workload,
                seed: 7,
                feed: true,
                retry: LoadgenRetry::default(),
            };
            let report = create_and_run(connect, name, &stream_config, &config)?;
            if metrics_dump {
                // Fold the client-side view into the same exposition the
                // admin listener serves, so the dump shows both sides.
                report.export_into(server.metrics().registry(), name);
            }
            println!(
                "{name:>16}: {:>8.2} Melem/s  ({} elements in {:.3}s, {} busy retries, \
                 {} batches abandoned, admission rate {:.2}%)",
                report.melem_per_s(),
                report.elements,
                report.elapsed.as_secs_f64(),
                report.busy_retries,
                report.abandoned_batches,
                report.stats.pipeline.admission_rate() * 100.0,
            );
        }

        // Snapshot → restore over the wire: the restored stream's future
        // equals the original's.
        let mut client = ServiceClient::new(connect()?)?;
        let blob = client.snapshot("peak-attack")?;
        client.restore("peak-attack-restored", &blob)?;
        let probe: Vec<_> = (0..1_000u64).map(uniform_node_sampling::NodeId::new).collect();
        let out_a = client.feed_batch("peak-attack", &probe)?.outputs;
        let out_b = client.feed_batch("peak-attack-restored", &probe)?.outputs;
        assert_eq!(out_a, out_b, "restored stream diverged");
        println!(
            "\nsnapshot/restore: {} bytes captured, restored stream bit-equal over {} probe \
             elements. ok.",
            blob.len(),
            probe.len()
        );

        if let Some(metrics_addr) = metrics_addr {
            let exposition = scrape(metrics_addr, "/metrics")?;
            let samples = uns_metrics::parse_exposition(&exposition)
                .map_err(|err| format!("unparseable exposition: {err}"))?;
            println!(
                "\n--- GET /metrics ({} samples from {metrics_addr}) ---\n{exposition}",
                samples.len()
            );
        }
        server.stop();
        Ok(())
    })
}
