//! Measure the write-ahead-log overhead of the durable service path.
//!
//! ```text
//! cargo run --release --example durable_overhead [connections] [elements_per_connection]
//! ```
//!
//! Runs the uniform loadgen workload twice over TCP loopback — once
//! against a plain in-memory server, once against a durable server
//! persisting to a real directory (`DirBackend`) at `FsyncPolicy::EveryN`
//! — and prints both throughputs plus the relative overhead. This is the
//! number BENCH_5.json records against the "WAL overhead ≤ 15% at
//! fsync-every-N" acceptance line.
//!
//! `UNS_BENCH_FAST=1` shrinks the run to a smoke test (CI uses this).

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use uns_service::loadgen::{create_and_run, LoadgenConfig, LoadgenReport, LoadgenRetry, Workload};
use uns_service::protocol::{EstimatorKind, HashFamilyKind, StreamConfig};
use uns_service::server::{DurabilityConfig, Server, ServerConfig};
use uns_service::storage::DirBackend;
use uns_service::wal::FsyncPolicy;

fn run(
    server: &Server,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, Box<dyn std::error::Error>> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let stream_config = StreamConfig {
        kind: EstimatorKind::CountMin,
        capacity: 10,
        width: 10,
        depth: 5,
        seed: 42,
        family: HashFamilyKind::Mersenne,
    };
    let report =
        std::thread::scope(|scope| -> Result<LoadgenReport, Box<dyn std::error::Error>> {
            scope.spawn(|| server.serve(listener));
            let connect = || {
                let stream = TcpStream::connect(addr).map_err(uns_service::ServiceError::from)?;
                stream.set_nodelay(true).map_err(uns_service::ServiceError::from)?;
                Ok(stream)
            };
            let report = create_and_run(connect, "uniform", &stream_config, config)?;
            server.stop();
            Ok(report)
        })?;
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = std::env::var("UNS_BENCH_FAST").is_ok_and(|v| v == "1");
    let connections: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(if fast { 2 } else { 4 });
    let elements: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(if fast {
        20_000
    } else {
        1_000_000
    });
    let config = LoadgenConfig {
        connections,
        elements_per_connection: elements / connections,
        batch_len: 4096,
        workload: Workload::Uniform { domain: 100_000 },
        seed: 7,
        feed: true,
        retry: LoadgenRetry::default(),
    };

    println!(
        "{connections} connections x {} elements, FeedBatch 4096, uniform workload\n",
        elements
    );

    let plain = run(&Server::start(ServerConfig::default()), &config)?;
    println!(
        "   plain (no WAL): {:>7.2} Melem/s  ({} elements in {:.3}s)",
        plain.melem_per_s(),
        plain.elements,
        plain.elapsed.as_secs_f64()
    );

    // Durable path: real files, fsync amortized over 32 ops (the
    // batched-durability configuration; PerOp measures the disk, not us).
    // Default cadence: 256 records ≈ 1M elements at batch 4096. Below
    // ~128 the number stops measuring the WAL and starts measuring the
    // disk: the sampler ingests ~136 MB/s on this class of host and a
    // fsync's cost scales with the dirty bytes it flushes, so syncing
    // inside the measurement window pays raw writeback bandwidth
    // regardless of how cheap the append path is (see BENCH_5.json for
    // the full cadence sweep).
    let every_n: u32 =
        std::env::var("UNS_WAL_EVERY_N").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
    let compact_mb: u64 =
        std::env::var("UNS_WAL_COMPACT_MB").ok().and_then(|v| v.parse().ok()).unwrap_or(16);
    let root = std::env::temp_dir().join(format!("uns-durable-overhead-{}", std::process::id()));
    let backend = DirBackend::create(&root)?;
    let mut durability = DurabilityConfig::new(Arc::new(backend));
    durability.fsync = FsyncPolicy::EveryN(every_n);
    durability.compact_bytes = compact_mb << 20;
    let durable = run(&Server::start_durable(ServerConfig::default(), durability)?, &config)?;
    let wal_bytes = durable.stats.durability.wal_bytes;
    std::fs::remove_dir_all(&root).ok();
    println!(
        " durable (EveryN): {:>7.2} Melem/s  ({} elements in {:.3}s, {} WAL bytes)",
        durable.melem_per_s(),
        durable.elements,
        durable.elapsed.as_secs_f64(),
        wal_bytes
    );

    let overhead = (plain.melem_per_s() / durable.melem_per_s() - 1.0) * 100.0;
    // The acceptance line only means something at full scale: a smoke run
    // finishes in milliseconds, where fixed costs (connection setup, the
    // first fsync) dwarf the steady-state WAL cost being measured.
    let note = if fast { "  (smoke run - not a valid measurement)" } else { "" };
    println!("\nWAL overhead at fsync-every-{every_n}: {overhead:.1}% (acceptance: <= 15%){note}");
    Ok(())
}
