//! Quickstart: unbias an adversarially flooded identifier stream.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! An adversary floods half of the input stream with a single sybil
//! identifier. The knowledge-free sampling service (paper's Algorithm 3)
//! reads the stream once, in a few hundred bytes of memory, and emits an
//! output stream in which the flooded identifier is reduced to its fair
//! share.

use uniform_node_sampling::{
    kl_gain, Frequencies, FrequencyEstimator, KnowledgeFreeSampler, NodeId, NodeSampler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200u64; // population size
    let m = 200_000usize; // stream length

    // The sampling service: memory c = 10, Count-Min sketch 10 × 5.
    let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 42)?;

    let mut input = Frequencies::new(n as usize);
    let mut output = Frequencies::new(n as usize);

    for i in 0..m as u64 {
        // Adversarial stream: every other element is the sybil id 0; the
        // rest cycles through the honest population.
        let id = if i % 2 == 0 { NodeId::new(0) } else { NodeId::new(1 + i % (n - 1)) };
        input.record(id.as_u64());
        let sample = sampler.feed(id); // one output sample per input element
        output.record(sample.as_u64());
    }

    let input_share = input.count(0) as f64 / input.total() as f64;
    let output_share = output.count(0) as f64 / output.total() as f64;
    let gain = kl_gain(input.counts(), output.counts())?.expect("input is biased");

    println!("population n = {n}, stream m = {m}");
    println!(
        "sampler memory: {} ids + {} sketch cells",
        sampler.capacity(),
        sampler.estimator().memory_cells()
    );
    println!(
        "flooded id share:   input {:.1}%  ->  output {:.2}%  (fair share {:.2}%)",
        input_share * 100.0,
        output_share * 100.0,
        100.0 / n as f64
    );
    println!("KL gain G_KL = {gain:.4}  (1.0 = perfectly unbiased)");

    assert!(gain > 0.8, "sampling service failed to unbias the stream");
    println!("ok: the output stream is close to uniform.");
    Ok(())
}
