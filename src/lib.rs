#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Uniform node sampling robust against collusions of malicious nodes.
//!
//! A complete Rust implementation of E. Anceaume, Y. Busnel and
//! B. Sericola, *"Uniform Node Sampling Service Robust against Collusions
//! of Malicious Nodes"* (43rd IEEE/IFIP DSN, 2013): the omniscient and
//! knowledge-free sampling strategies, every substrate they depend on, the
//! paper's analytic machinery, adversarial workload generators, a gossip
//! overlay simulator, and a harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! This facade re-exports the most commonly used items; the member crates
//! are also usable directly:
//!
//! * [`core`] — the sampling strategies and baselines;
//! * [`sketch`] — Count-Min / Count sketches and 2-universal hashing;
//! * [`analysis`] — attack-effort bounds, Markov chain validation and KL
//!   metrics;
//! * [`streams`] — attack distributions and trace surrogates;
//! * [`sim`] — the gossip overlay simulator;
//! * [`service`] — the networked sampling service (framed wire protocol,
//!   multi-tenant server, snapshot/restore, load generator);
//! * [`metrics`] — lock-free counters/gauges/histograms, the Prometheus
//!   text exposition renderer, and the structured trace ring behind the
//!   service's `/metrics` surface.
//!
//! # Quickstart
//!
//! ```
//! use uniform_node_sampling::{KnowledgeFreeSampler, NodeId, NodeSampler};
//!
//! # fn main() -> Result<(), uniform_node_sampling::CoreError> {
//! let mut sampler = KnowledgeFreeSampler::with_count_min(10, 10, 5, 42)?;
//! // Even if an adversary floods the stream with one identifier, the
//! // output stream keeps sampling the whole population.
//! for i in 0..50_000u64 {
//!     let id = if i % 2 == 0 { NodeId::new(0) } else { NodeId::new(i % 200) };
//!     let _sample = sampler.feed(id);
//! }
//! # Ok(())
//! # }
//! ```

pub use uns_analysis as analysis;
pub use uns_core as core;
pub use uns_metrics as metrics;
pub use uns_service as service;
pub use uns_sim as sim;
pub use uns_sketch as sketch;
pub use uns_streams as streams;

pub use uns_analysis::{
    flooding_attack_effort, kl_gain, kl_vs_uniform, targeted_attack_effort, Frequencies,
    SubsetChain, Summary,
};
pub use uns_core::{
    CoreError, KnowledgeFreeSampler, MinWiseSampler, MinWiseSamplerArray, NodeId, NodeSampler,
    OmniscientSampler, PassthroughSampler, ReservoirSampler, SamplingMemory, WeightedSampler,
};
pub use uns_service::{ServiceClient, ServiceError, ServiceSampler};
pub use uns_sim::{
    MaliciousStrategy, SamplerKind, ShardedIngestion, SimConfig, SimMetrics, Simulation,
};
pub use uns_sketch::{CountMinSketch, CountSketch, ExactFrequencyOracle, FrequencyEstimator};
pub use uns_streams::{IdDistribution, IdStream, StreamError, SybilInjector, TraceSpec};
